// chainnet — command-line front end for the library.
//
//   chainnet version   [--dtype f64|f32|bf16] [--json]
//   chainnet generate  --kind type1|type2|problem [--devices D] [--seed S]
//                      --system out.json [--placement out.json]
//   chainnet initial   --system s.json --out placement.json
//   chainnet plan      --dump s.json [--width B] [--hidden H]
//                      [--iterations N]
//   chainnet simulate  --system s.json --placement p.json
//                      [--horizon H] [--seed S] [--json]
//   chainnet approx    --system s.json --placement p.json [--json]
//   chainnet train     --weights out.bin [--samples N] [--epochs E]
//                      [--hidden H] [--iterations N] [--seed S]
//   chainnet predict   --system s.json --placement p.json --weights w.bin
//                      [--hidden H] [--iterations N] [--json]
//   chainnet optimize  --system s.json (--weights w.bin | --oracle sim|approx)
//                      [--steps N] [--trials T] [--out placement.json]
//                      [--threads N] [--cache-size N] [--batch K]
//                      [--algo sa|pt|popanneal|bestofb] [--population K]
//                      [--ladder-ratio R] [--exchange-interval N]
//                      [--resample-interval N]
//   chainnet serve     --system s.json (--weights w.bin | --manifest m.json
//                      | --oracle sim|approx) [--port P] [--threads N]
//                      [--batch K] [--flush-ms W] [--max-queue N]
//                      [--cache-size N] [--name NAME] [--port-file PATH]
//   chainnet route     --backends h:p,h:p[,...] [--port P] [--metrics-port P]
//                      [--health-ms MS] [--vnodes V]
//                      [--affinity system|placement] [--port-file PATH]
//   chainnet reload    --port P [--host H] --manifest m.json [--json]
//   chainnet query     --port P [--host H] (--stats | --ping | --shutdown |
//                      --placement p.json [--system NAME] [--deadline-ms D])
//                      [--json]
//
// serve --manifest loads weights through the versioned model registry: the
// manifest pins the params file by checksum, and a later `reload` request
// (the reload subcommand, pointed at a server or a router) hot-swaps to a
// new version with zero downtime. route multiplexes eval traffic across N
// running serve instances by consistent hashing and exposes Prometheus
// metrics on --metrics-port.
//
// --threads N  fans independent SA trials out across an N-worker pool
//              (each worker gets a private oracle with a decorrelated
//              seed stream); N=1 reproduces the serial driver exactly.
// --batch K    switches to the neighbor-pool driver: K candidate moves per
//              step, scored as one batch across the pool.
// --algo A     picks the search algorithm (src/search/): sa (default, the
//              paper's annealing), pt (parallel tempering), popanneal
//              (population annealing), bestofb (wide-neighborhood
//              best-of-B). The population algorithms batch --population
//              candidates per step through the evaluation service and are
//              bit-for-bit reproducible for a fixed --seed at any
//              --threads value.
// --cache-size N  memoizes oracle calls in a sharded LRU keyed by the
//              placement's canonical hash; hits are reported separately
//              and never counted as oracle evaluations.
//
// serve/query speak the length-prefixed JSON protocol of serve/protocol.h;
// `serve` binds a TCP port (0 = ephemeral, the bound port is printed) and
// microbatches concurrent eval requests into the shared evaluation service.
//
// Exit codes: 0 success, 1 usage error, 2 runtime failure.
#include <csignal>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/chainnet.h"
#include "core/surrogate.h"
#include "edge/json_io.h"
#include "edge/problem.h"
#include "edge/qn_mapping.h"
#include "gnn/dataset.h"
#include "gnn/metrics.h"
#include "gnn/plan_compiler.h"
#include "gnn/trainer.h"
#include "optim/annealing.h"
#include "optim/evaluator.h"
#include "optim/experiment.h"
#include "optim/initial.h"
#include "queueing/approximation.h"
#include "queueing/simulator.h"
#include "runtime/eval_cache.h"
#include "runtime/eval_service.h"
#include "runtime/thread_pool.h"
#include "search/optimizer.h"
#include "serve/client.h"
#include "serve/registry.h"
#include "serve/router.h"
#include "serve/server.h"
#include "support/json.h"
#include "support/rng.h"
#include "tensor/dtype.h"
#include "tensor/kernels.h"
#include "tensor/serialize.h"

namespace {

using namespace chainnet;
using support::Json;

/// --flag value / --flag parsing; positionals collected in order.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const std::string key = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          flags_[key] = argv[++i];
        } else {
          flags_[key] = "";
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  bool has(const std::string& key) const { return flags_.count(key) > 0; }
  std::string require(const std::string& key) const {
    auto it = flags_.find(key);
    if (it == flags_.end() || it->second.empty()) {
      throw std::runtime_error("missing required flag --" + key);
    }
    return it->second;
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = flags_.find(key);
    return it == flags_.end() || it->second.empty() ? fallback : it->second;
  }
  double number(const std::string& key, double fallback) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? fallback : std::stod(it->second);
  }
  int integer(const std::string& key, int fallback) const {
    return static_cast<int>(number(key, fallback));
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Numeric tier selection: --dtype beats CHAINNET_DTYPE beats f64. Both
/// spellings are validated (unknown values throw with the accepted list).
tensor::DType dtype_config(const Args& args) {
  tensor::DType dtype = tensor::dtype_from_env(tensor::DType::kF64);
  if (args.has("dtype")) {
    dtype = tensor::parse_dtype_or_throw(args.require("dtype"));
  }
  return dtype;
}

core::ChainNetConfig model_config(const Args& args) {
  core::ChainNetConfig cfg;
  cfg.hidden = args.integer("hidden", 32);
  cfg.iterations = args.integer("iterations", 4);
  cfg.dtype = dtype_config(args);
  return cfg;
}

queueing::SimConfig sim_config(const edge::EdgeSystem& sys,
                               const Args& args) {
  double max_ia = 0.0;
  for (const auto& chain : sys.chains) {
    max_ia = std::max(max_ia, 1.0 / chain.arrival_rate);
  }
  queueing::SimConfig cfg;
  cfg.horizon = args.number("horizon", 2000.0 * max_ia);
  cfg.seed = static_cast<std::uint64_t>(args.number("seed", 1.0));
  return cfg;
}

Json chain_report(const edge::EdgeSystem& sys, std::size_t i,
                  double throughput, double latency, double loss) {
  Json entry;
  entry["chain"] = Json(sys.chains[i].name);
  entry["throughput"] = Json(throughput);
  entry["latency"] = Json(latency);
  entry["loss_probability"] = Json(loss);
  return entry;
}

void emit(const Json& report, bool as_json) {
  if (as_json) {
    std::cout << report.dump(2) << "\n";
    return;
  }
  for (const auto& entry : report.at("chains").as_array()) {
    std::cout << "  " << entry.at("chain").as_string()
              << ": X=" << entry.at("throughput").as_number()
              << "/s L=" << entry.at("latency").as_number()
              << "s loss=" << entry.at("loss_probability").as_number()
              << "\n";
  }
  if (report.has("total_throughput")) {
    std::cout << "total throughput: "
              << report.at("total_throughput").as_number()
              << "/s, overall loss: "
              << report.at("loss_probability").as_number() << "\n";
  }
}

// `version`: the runtime-resolved execution environment — which kernel ISA
// tier the dispatcher picked on this host (after CHAINNET_KERNEL_ISA) and
// which numeric tier inference would run at (after --dtype/CHAINNET_DTYPE).
// Scripts use this to record exactly what a benchmark ran on.
int cmd_version(const Args& args) {
  const tensor::DType dtype = dtype_config(args);
  if (args.has("json")) {
    Json report;
    report["kernel_isa"] = Json(std::string(tensor::kernels::isa()));
    report["dtype"] = Json(std::string(tensor::dtype_name(dtype)));
    std::cout << report.dump(2) << "\n";
    return 0;
  }
  std::cout << "chainnet\n  kernel ISA: " << tensor::kernels::isa()
            << "\n  dtype: " << tensor::dtype_name(dtype) << "\n";
  return 0;
}

int cmd_generate(const Args& args) {
  const std::string kind = args.get("kind", "type1");
  support::Rng rng(static_cast<std::uint64_t>(args.number("seed", 1.0)));
  edge::EdgeSystem system;
  std::optional<edge::Placement> placement;
  if (kind == "type1" || kind == "type2") {
    const auto params = kind == "type1" ? edge::NetworkGenParams::type1()
                                        : edge::NetworkGenParams::type2();
    auto sample = edge::generate_network_sample(params, rng);
    system = std::move(sample.system);
    placement = std::move(sample.placement);
  } else if (kind == "problem") {
    system = edge::generate_placement_problem(
        edge::PlacementProblemParams::paper(args.integer("devices", 20)),
        rng);
  } else if (kind == "casestudy") {
    system = edge::case_study_system();
  } else {
    std::cerr << "unknown --kind '" << kind << "'\n";
    return 1;
  }
  edge::save_json(edge::to_json(system), args.require("system"));
  std::cout << "wrote system (" << system.num_chains() << " chains, "
            << system.num_devices() << " devices) to "
            << args.require("system") << "\n";
  if (args.has("placement")) {
    if (!placement) placement = optim::initial_placement(system);
    edge::save_json(edge::to_json(*placement), args.require("placement"));
    std::cout << "wrote placement to " << args.require("placement") << "\n";
  }
  return 0;
}

int cmd_initial(const Args& args) {
  const auto system = edge::load_system(args.require("system"));
  const auto placement = optim::initial_placement(system);
  edge::save_json(edge::to_json(placement), args.require("out"));
  std::cout << "wrote ranking-score initial placement ("
            << placement.used_devices().size() << " devices used) to "
            << args.require("out") << "\n";
  return 0;
}

// `plan --dump`: compile the execution plan for a system's topology and
// print the op list — one line per op with kind and pre-resolved scratch
// offsets, headed by the arena size in doubles/bytes. Plans depend only on
// topology + model shape + batch width, so any valid placement (the
// ranking-score initial one here) yields the same plan.
int cmd_plan(const Args& args) {
  if (!args.has("dump")) {
    std::cerr << "plan needs --dump <system.json>\n";
    return 1;
  }
  const auto system = edge::load_system(args.require("dump"));
  const auto placement = optim::initial_placement(system);
  const core::ChainNetConfig cfg = model_config(args);
  const auto graph = edge::build_graph(
      system, placement,
      cfg.modified_inputs ? edge::FeatureMode::kModified
                          : edge::FeatureMode::kOriginal);
  gnn::PlanShape shape;
  shape.hidden = cfg.hidden;
  shape.iterations = cfg.iterations;
  shape.attention_heads = cfg.attention_heads;
  shape.modified_outputs = cfg.modified_outputs;
  shape.attention_aggregation = cfg.attention_aggregation;
  shape.dtype = cfg.dtype;
  const auto plan = gnn::compile_plan(graph, shape, args.integer("width", 1));
  std::cout << plan->dump();
  return 0;
}

int cmd_simulate(const Args& args) {
  const auto system = edge::load_system(args.require("system"));
  const auto placement = edge::load_placement(args.require("placement"));
  placement.validate(system);
  const auto qn = edge::build_qn(system, placement);
  const auto result = queueing::simulate(qn, sim_config(system, args));
  Json report;
  Json chains;
  for (std::size_t i = 0; i < result.chains.size(); ++i) {
    chains.push_back(chain_report(system, i, result.chains[i].throughput,
                                  result.chains[i].mean_latency,
                                  result.chains[i].loss_probability));
  }
  report["chains"] = std::move(chains);
  report["total_throughput"] = Json(result.total_throughput());
  report["loss_probability"] =
      Json(result.loss_probability(system.total_arrival_rate()));
  report["events"] = Json(static_cast<double>(result.events));
  emit(report, args.has("json"));
  return 0;
}

int cmd_approx(const Args& args) {
  const auto system = edge::load_system(args.require("system"));
  const auto placement = edge::load_placement(args.require("placement"));
  placement.validate(system);
  const auto qn = edge::build_qn(system, placement);
  const auto result = queueing::approximate(qn);
  Json report;
  Json chains;
  for (std::size_t i = 0; i < result.chains.size(); ++i) {
    chains.push_back(chain_report(system, i, result.chains[i].throughput,
                                  result.chains[i].mean_latency,
                                  result.chains[i].loss_probability));
  }
  report["chains"] = std::move(chains);
  report["total_throughput"] = Json(result.total_throughput());
  report["loss_probability"] = Json(optim::loss_probability(
      system, result.total_throughput()));
  report["converged"] = Json(result.converged);
  emit(report, args.has("json"));
  return 0;
}

int cmd_train(const Args& args) {
  const int samples = args.integer("samples", 300);
  gnn::LabelingConfig labeling;
  labeling.arrivals_per_chain = args.number("label-arrivals", 1500.0);
  std::cout << "generating " << samples << " Type I samples...\n";
  const auto dataset = gnn::generate_dataset(
      edge::NetworkGenParams::type1(), samples, labeling,
      static_cast<std::uint64_t>(args.number("seed", 11.0)));
  support::Rng rng(static_cast<std::uint64_t>(args.number("seed", 11.0)) ^
                   0xabcd);
  core::ChainNet model(model_config(args), rng);
  gnn::TrainConfig tc;
  tc.epochs = args.integer("epochs", 30);
  tc.on_epoch = [](int epoch, double loss, double) {
    if (epoch % 5 == 0) std::cout << "  epoch " << epoch << ": " << loss
                                  << "\n";
  };
  std::cout << "training ChainNet (" << model.parameter_count()
            << " parameters)...\n";
  const auto report = gnn::train(model, dataset, nullptr, tc);
  tensor::save_parameters(model, args.require("weights"));
  std::cout << "trained in " << report.seconds << "s; weights -> "
            << args.require("weights") << "\n";
  return 0;
}

int cmd_predict(const Args& args) {
  const auto system = edge::load_system(args.require("system"));
  const auto placement = edge::load_placement(args.require("placement"));
  placement.validate(system);
  support::Rng rng(1);
  core::ChainNet model(model_config(args), rng);
  tensor::load_parameters(model, args.require("weights"));
  core::Surrogate surrogate(model);
  const auto preds = surrogate.predict(system, placement);
  Json report;
  Json chains;
  double total = 0.0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    total += preds[i].throughput;
    const double loss =
        1.0 - preds[i].throughput / system.chains[i].arrival_rate;
    chains.push_back(chain_report(system, i, preds[i].throughput,
                                  preds[i].latency, loss));
  }
  report["chains"] = std::move(chains);
  report["total_throughput"] = Json(total);
  report["loss_probability"] = Json(optim::loss_probability(system, total));
  emit(report, args.has("json"));
  return 0;
}

int cmd_evaluate(const Args& args) {
  support::Rng rng(1);
  core::ChainNet model(model_config(args), rng);
  tensor::load_parameters(model, args.require("weights"));
  const int samples = args.integer("samples", 100);
  const std::string kind = args.get("kind", "type1");
  const auto params = kind == "type2" ? edge::NetworkGenParams::type2()
                                      : edge::NetworkGenParams::type1();
  gnn::LabelingConfig labeling;
  labeling.arrivals_per_chain = args.number("label-arrivals", 1500.0);
  std::cout << "generating " << samples << " " << kind
            << " test samples...\n";
  const auto test = gnn::generate_dataset(
      params, samples, labeling,
      static_cast<std::uint64_t>(args.number("seed", 77.0)));
  const auto errors = gnn::evaluate(model, test);
  const auto tput = gnn::summarize(gnn::throughput_apes(errors));
  const auto lat = gnn::summarize(gnn::latency_apes(errors));
  std::cout << "throughput: MAPE " << tput.mape << ", p95 " << tput.p95
            << "\nlatency:    MAPE " << lat.mape << ", p95 " << lat.p95
            << "\n(" << tput.count << " chains evaluated)\n";
  return 0;
}

/// The oracle stack shared by `optimize` and `serve`: an evaluator factory
/// (one private oracle per worker stream) plus the objects that must
/// outlive the evaluators it hands out.
struct OracleSetup {
  runtime::EvalService::EvaluatorFactory factory;  // empty on usage error
  std::shared_ptr<runtime::EvalCache> cache;
  // Set when the oracle is a --manifest model registry (hot-swappable).
  std::shared_ptr<serve::ModelRegistry> registry;
  // Surrogate models are parked here so they outlive their evaluators.
  std::shared_ptr<std::vector<std::unique_ptr<core::ChainNet>>> models =
      std::make_shared<std::vector<std::unique_ptr<core::ChainNet>>>();
};

/// `registry_slots` > 0 enables the --manifest oracle (a versioned model
/// registry with that many evaluation slots); pass 0 from commands that
/// cannot hot-swap.
OracleSetup build_oracle(const Args& args, const edge::EdgeSystem& system,
                         int registry_slots = 0) {
  OracleSetup setup;
  const std::string oracle = args.get("oracle", "");
  if (registry_slots > 0 && args.has("manifest")) {
    setup.registry = std::make_shared<serve::ModelRegistry>(
        model_config(args), registry_slots);
    const auto info = setup.registry->load(args.require("manifest"));
    std::cout << "loaded model version " << info.version << " ("
              << tensor::checksum_to_string(info.checksum) << ")\n";
    setup.factory = serve::registry_factory(setup.registry);
  } else if (args.has("weights")) {
    const std::string weights = args.require("weights");
    const auto cfg = model_config(args);
    setup.factory = [models = setup.models, cfg, weights](
                        support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
      support::Rng init_rng(1);
      auto model = std::make_unique<core::ChainNet>(cfg, init_rng);
      tensor::load_parameters(*model, weights);
      models->push_back(std::move(model));
      return std::make_unique<optim::SurrogateEvaluator>(
          core::Surrogate(*models->back()));
    };
  } else if (oracle == "approx") {
    setup.factory =
        [](support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
      return std::make_unique<optim::ApproximationEvaluator>();
    };
  } else if (oracle == "sim" || oracle.empty()) {
    auto cfg = sim_config(system, args);
    cfg.horizon /= 10.0;  // cheaper per-candidate effort inside the search
    // Fixed evaluation seed across workers (common random numbers), so the
    // objective depends on the placement only and batched / parallel runs
    // are reproducible regardless of which worker scores a candidate.
    setup.factory =
        [cfg](support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
      return std::make_unique<optim::SimulationEvaluator>(cfg);
    };
  } else {
    std::cerr << "unknown --oracle '" << oracle << "'\n";
    return setup;  // empty factory: caller exits with a usage error
  }

  const auto cache_size =
      static_cast<std::size_t>(std::max(0, args.integer("cache-size", 0)));
  if (cache_size > 0) {
    runtime::EvalCacheConfig cache_cfg;
    cache_cfg.capacity = cache_size;
    setup.cache = std::make_shared<runtime::EvalCache>(cache_cfg);
    setup.factory = [inner = std::move(setup.factory), cache = setup.cache](
                        support::Rng stream)
        -> std::unique_ptr<optim::PlacementEvaluator> {
      return std::make_unique<runtime::CachedEvaluator>(inner(stream), cache);
    };
  }
  return setup;
}

int cmd_optimize(const Args& args) {
  // Validate the dtype spelling up front: the sim/approx oracles never
  // build a surrogate, so without this a typo in --dtype/CHAINNET_DTYPE
  // would be accepted silently instead of failing with the accepted list.
  (void)dtype_config(args);
  const auto system = edge::load_system(args.require("system"));
  const auto initial = optim::initial_placement(system);

  const int threads = std::max(1, args.integer("threads", 1));
  const int batch = std::max(0, args.integer("batch", 0));
  const auto seed = static_cast<std::uint64_t>(args.number("seed", 1.0));

  const std::string algo_text = args.get("algo", "sa");
  search::Algo algo;
  if (!search::parse_algo(algo_text, algo)) {
    std::cerr << "unknown --algo '" << algo_text
              << "' (expected sa|pt|popanneal|bestofb)\n";
    return 1;
  }

  auto setup = build_oracle(args, system);
  if (!setup.factory) return 1;
  auto& factory = setup.factory;
  const auto& cache = setup.cache;

  optim::SaConfig sa;
  sa.max_steps = args.integer("steps", 100);
  sa.seed = seed;
  // The population algorithms step a whole population per trial, so one
  // trial is already a multi-start; plain SA keeps the paper's 5 restarts.
  const int trials =
      args.integer("trials", algo == search::Algo::kSa ? 5 : 1);

  optim::SaResult result;
  if (algo != search::Algo::kSa) {
    search::SearchConfig cfg;
    cfg.sa = sa;
    cfg.population = std::max(1, args.integer("population", 16));
    cfg.ladder_ratio = std::max(1.0, args.number("ladder-ratio", 24.0));
    cfg.exchange_interval = args.integer("exchange-interval", 1);
    cfg.resample_interval = args.integer("resample-interval", 5);
    runtime::ThreadPool pool(threads);
    runtime::EvalService service(pool, factory, seed);
    const auto optimizer = search::make_optimizer(algo, service, cfg);
    result = search::run_trials(*optimizer, system, initial, seed, trials);
  } else if (threads > 1 || batch > 0) {
    runtime::ThreadPool pool(threads);
    runtime::EvalService service(pool, factory, seed);
    result = batch > 0
                 ? optim::anneal_batched(system, initial, service, sa, batch)
                 : optim::anneal_trials_parallel(system, initial, service, sa,
                                                 trials);
  } else {
    const auto evaluator =
        factory(runtime::EvalService::worker_stream(seed, 0));
    result = optim::anneal_trials(system, initial, *evaluator, sa, trials);
  }

  const auto ref = sim_config(system, args);
  const double x0 = optim::simulated_total_throughput(system, initial, ref);
  const double x1 =
      optim::simulated_total_throughput(system, result.best, ref);
  std::cout << "search[" << algo_text << "]: " << result.trials
            << " trials x " << sa.max_steps
            << " steps, " << result.evaluations << " oracle evaluations in "
            << result.wall_seconds << "s wall (" << threads << " thread"
            << (threads == 1 ? "" : "s");
  if (result.wall_seconds > 0.0) {
    std::cout << ", "
              << static_cast<double>(result.evaluations) /
                     result.wall_seconds
              << " evals/s";
  }
  std::cout << ")\n";
  std::cout << "diagnostics: " << optim::search_diagnostics(result) << "\n";
  if (cache) {
    const auto stats = cache->stats();
    std::cout << "cache: " << stats.hits << " hits, " << stats.misses
              << " misses, " << stats.evictions << " evictions, "
              << stats.entries << " resident\n";
  }
  std::cout
            << "loss probability: initial "
            << optim::loss_probability(system, x0) << " -> optimized "
            << optim::loss_probability(system, x1)
            << " (relative loss reduction "
            << optim::relative_loss_reduction(system, x0, x1) << ")\n";
  if (args.has("out")) {
    edge::save_json(edge::to_json(result.best), args.require("out"));
    std::cout << "wrote optimized placement to " << args.require("out")
              << "\n";
  }
  return 0;
}

volatile std::sig_atomic_t g_interrupted = 0;

void handle_interrupt(int) { g_interrupted = 1; }

/// Writes the bound port(s), one per line, so a parent process that spawned
/// us with --port 0 can learn where to connect (the integration tests'
/// handshake).
void write_port_file(const std::string& path, std::initializer_list<int> ports) {
  std::ofstream out(path, std::ios::trunc);
  for (int port : ports) out << port << "\n";
  if (!out) throw std::runtime_error("cannot write port file " + path);
}

int cmd_serve(const Args& args) {
  const auto system = edge::load_system(args.require("system"));
  const int threads = std::max(1, args.integer("threads", 4));
  // EvalService builds one evaluator per pool worker plus one for the
  // owning thread, so a registry must provide threads + 1 slots.
  auto setup = build_oracle(args, system, threads + 1);
  if (!setup.factory) return 1;

  const auto seed = static_cast<std::uint64_t>(args.number("seed", 1.0));
  runtime::ThreadPool pool(threads);
  runtime::EvalService service(pool, setup.factory, seed);

  serve::ServerConfig config;
  config.port = args.integer("port", 0);
  config.max_batch = args.integer("batch", 32);
  config.flush_window_ms = args.number("flush-ms", 0.5);
  config.max_pending =
      static_cast<std::size_t>(std::max(1, args.integer("max-queue", 1024)));
  config.cache = setup.cache;
  config.registry = setup.registry;
  config.dtype = dtype_config(args);
  serve::Server server(service, config);
  server.add_system(args.get("name", "default"), system);
  server.start();
  if (args.has("port-file")) {
    write_port_file(args.require("port-file"), {server.port()});
  }
  std::cout << "serving '" << args.get("name", "default") << "' ("
            << system.num_chains() << " chains, " << system.num_devices()
            << " devices) on port " << server.port() << " with " << threads
            << " worker thread" << (threads == 1 ? "" : "s")
            << "; stop with SIGINT or a {\"type\":\"shutdown\"} request\n"
            << std::flush;

  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
  // Poll so a signal interrupts the wait promptly (wait() blocks in a
  // condition variable no signal handler can notify).
  while (!g_interrupted &&
         !server.wait_for(std::chrono::milliseconds(200))) {
  }
  server.stop();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  const auto& m = server.metrics();
  std::cout << "served " << m.requests_total.value() << " requests ("
            << m.placements_evaluated.value() << " placements in "
            << m.batches_flushed.value() << " batches); "
            << m.rejects_overload.value() << " overload rejects, "
            << m.deadline_drops.value() << " deadline drops\n";
  return 0;
}

int cmd_route(const Args& args) {
  serve::RouterConfig config;
  // Repeated flags clobber in Args, so the backend list is one
  // comma-separated value: --backends 127.0.0.1:7001,127.0.0.1:7002
  std::string list = args.require("backends");
  for (std::size_t start = 0; start <= list.size();) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string entry = list.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "--backends entries must be host:port (got '" << entry
                << "')\n";
      return 1;
    }
    serve::BackendAddress addr;
    addr.host = entry.substr(0, colon);
    addr.port = std::stoi(entry.substr(colon + 1));
    config.backends.push_back(std::move(addr));
  }
  if (config.backends.empty()) {
    std::cerr << "--backends must name at least one host:port\n";
    return 1;
  }
  config.port = args.integer("port", 0);
  config.metrics_port = args.integer("metrics-port", 0);
  config.vnodes_per_backend = args.integer("vnodes", 128);
  config.health_interval_ms = args.number("health-ms", 200.0);
  const std::string affinity = args.get("affinity", "system");
  if (affinity == "placement") {
    config.affinity = serve::RouteAffinity::kPlacement;
  } else if (affinity != "system") {
    std::cerr << "--affinity must be system or placement\n";
    return 1;
  }

  serve::Router router(config);
  router.start();
  if (args.has("port-file")) {
    write_port_file(args.require("port-file"),
                    {router.port(), router.metrics_port()});
  }
  std::cout << "routing across " << config.backends.size()
            << " backends on port " << router.port();
  if (router.metrics_port() >= 0) {
    std::cout << " (metrics on " << router.metrics_port() << ")";
  }
  std::cout << "; stop with SIGINT or a {\"type\":\"shutdown\"} request\n"
            << std::flush;

  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
  while (!g_interrupted &&
         !router.wait_for(std::chrono::milliseconds(200))) {
  }
  router.stop();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  const auto& m = router.metrics();
  std::cout << "routed " << m.evals_routed.value() << " evals ("
            << m.retries.value() << " retries, "
            << m.upstream_failures.value() << " upstream failures); "
            << m.ejections.value() << " ejections, "
            << m.reinstatements.value() << " reinstatements\n";
  return 0;
}

int cmd_reload(const Args& args) {
  serve::Client client(args.get("host", "127.0.0.1"),
                       args.integer("port", 0));
  Json request;
  request["type"] = Json("reload");
  // The path is opened by the *server* process, so it must be absolute or
  // relative to the server's working directory.
  request["manifest"] = Json(args.require("manifest"));
  const Json response = client.call(request);
  if (args.has("json")) {
    std::cout << response.dump(2) << "\n";
    return 0;
  }
  if (response.has("results")) {  // router fan-out: one entry per backend
    for (const auto& entry : response.at("results").as_array()) {
      const auto& backend = entry.at("response");
      std::cout << entry.at("backend").as_string() << ": ";
      if (backend.has("version")) {
        std::cout << "version " << backend.at("version").as_number() << " ("
                  << backend.get_string("checksum", "?") << ")\n";
      } else {
        std::cout << backend.dump() << "\n";
      }
    }
    return 0;
  }
  std::cout << "reloaded: version " << response.get_number("version", -1.0)
            << " (" << response.get_string("checksum", "?") << ")\n";
  return 0;
}

int cmd_query(const Args& args) {
  serve::Client client(args.get("host", "127.0.0.1"),
                       args.integer("port", 0));
  if (args.has("stats")) {
    std::cout << client.stats().dump(2) << "\n";
    return 0;
  }
  if (args.has("shutdown")) {
    client.request_shutdown();
    std::cout << "shutdown requested\n";
    return 0;
  }
  if (args.has("ping")) {
    client.ping();
    std::cout << "ok\n";
    return 0;
  }
  if (args.has("placement")) {
    const auto placement = edge::load_placement(args.require("placement"));
    const double value =
        client.evaluate_one(placement, args.get("system", "default"),
                            args.number("deadline-ms", 0.0));
    if (args.has("json")) {
      Json report;
      report["total_throughput"] = Json(value);
      std::cout << report.dump(2) << "\n";
    } else {
      std::cout << "total throughput: " << value << "/s\n";
    }
    return 0;
  }
  std::cerr << "query needs one of --stats, --ping, --shutdown,"
               " --placement\n";
  return 1;
}

int usage() {
  std::cerr
      << "usage: chainnet <command> [flags]\n"
         "  version   [--dtype f64|f32|bf16] [--json]\n"
         "  generate  --kind type1|type2|problem|casestudy --system out.json"
         " [--placement out.json] [--devices D] [--seed S]\n"
         "  initial   --system s.json --out p.json\n"
         "  plan      --dump s.json [--width B] [--hidden H]"
         " [--iterations N]\n"
         "  simulate  --system s.json --placement p.json [--horizon H]"
         " [--seed S] [--json]\n"
         "  approx    --system s.json --placement p.json [--json]\n"
         "  train     --weights out.bin [--samples N] [--epochs E]"
         " [--hidden H] [--iterations N] [--seed S]\n"
         "  predict   --system s.json --placement p.json --weights w.bin"
         " [--json]\n"
         "  evaluate  --weights w.bin [--kind type1|type2] [--samples N]\n"
         "  optimize  --system s.json [--weights w.bin | --oracle"
         " sim|approx] [--steps N] [--trials T] [--out p.json]\n"
         "            [--threads N] [--cache-size N] [--batch K]"
         " [--algo sa|pt|popanneal|bestofb] [--population K]\n"
         "            [--ladder-ratio R] [--exchange-interval N]"
         " [--resample-interval N]\n"
         "  serve     --system s.json [--weights w.bin | --manifest m.json |"
         " --oracle sim|approx] [--port P] [--threads N]\n"
         "            [--batch K] [--flush-ms W] [--max-queue N]"
         " [--cache-size N] [--name NAME] [--port-file PATH]\n"
         "  route     --backends h:p,h:p[,...] [--port P] [--metrics-port P]"
         " [--health-ms MS] [--vnodes V]\n"
         "            [--affinity system|placement] [--port-file PATH]\n"
         "  reload    --port P [--host H] --manifest m.json [--json]\n"
         "  query     --port P [--host H] (--stats | --ping | --shutdown |"
         " --placement p.json)\n"
         "            [--system NAME] [--deadline-ms D] [--json]\n"
         "model-building commands (plan, train, predict, evaluate, optimize,"
         " serve) also take\n"
         "  --dtype f64|f32|bf16   numeric inference tier (default: "
         "CHAINNET_DTYPE, else f64)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args(argc, argv);
  try {
    if (command == "version") return cmd_version(args);
    if (command == "generate") return cmd_generate(args);
    if (command == "initial") return cmd_initial(args);
    if (command == "plan") return cmd_plan(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "approx") return cmd_approx(args);
    if (command == "train") return cmd_train(args);
    if (command == "predict") return cmd_predict(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "optimize") return cmd_optimize(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "route") return cmd_route(args);
    if (command == "reload") return cmd_reload(args);
    if (command == "query") return cmd_query(args);
    std::cerr << "unknown command '" << command << "'\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
