#!/usr/bin/env bash
# The full pre-merge gate: tier-0 static analysis (chainnet_lint), tier-1
# build + tests, a plan-parity pass of the inference suites under
# CHAINNET_INTERPRET=1, a bench_infer parity smoke, then both sanitizer
# suites (scripts/check_asan.sh, scripts/check_tsan.sh).
#
# Usage: scripts/check_all.sh [extra ctest args...]
#
# Extra arguments are forwarded to every ctest invocation. Each stage uses
# its own build directory (build, build-asan, build-tsan), so incremental
# reruns are cheap. The tier-1 tree is configured with warnings-as-errors
# (CHAINNET_WERROR=ON); the option sticks in build/'s cache until turned
# off explicitly with -DCHAINNET_WERROR=OFF.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier 0: static analysis (chainnet_lint) =="
# The linter is built and run before anything else: rule violations in src/
# should fail the gate in seconds, not after a full compile. check_lint.sh
# runs the analyzer over src/ + tools/lint under a wall-clock budget, then
# the lint test suites (fixture corpus, analyzer unit tests, JSON golden).
scripts/check_lint.sh "$@"

echo
echo "== tier 1: build + ctest (build/) =="
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)" "$@"

echo
echo "== plan parity: interpreted reference executor (CHAINNET_INTERPRET=1) =="
# forward_values[_batch] replay compiled plans; plan_test (tier 1 above)
# pins replay == interpreted bit for bit on every ablation and width. This
# stage re-runs the numeric inference suites with CHAINNET_INTERPRET=1 so
# the interpreted walk — the reference the plans are compiled from and the
# escape hatch operators reach for — itself stays a complete executor that
# matches forward() and the batch/scalar bitwise pins. plan_test is NOT in
# this filter: its cache-counter assertions assume plan dispatch.
CHAINNET_INTERPRET=1 ctest --test-dir build \
  -R '(chainnet_inference|chainnet_batch)_test' --output-on-failure "$@"

echo
echo "== bench_infer smoke (parity + rank-fidelity gates) =="
# bench_infer refuses to emit numbers unless the fused + batched paths
# reproduce the reference forward bit-for-bit and plan replay reproduces
# the interpreted walk, so a short run doubles as a parity check on the
# exact host ISA tier in use. The same run evaluates the reduced-precision
# tiers (f32, bf16 storage) against the f64 oracle: pairwise rank agreement
# over sampled neighbor sets plus an SA objective-at-budget comparison,
# exiting nonzero if either falls past the committed thresholds — so a
# kernel or packing change that silently reorders placements fails here,
# not in production search.
CHAINNET_INFER_SECONDS=0.05 \
CHAINNET_INFER_OUT=build/BENCH_infer_smoke.json \
  ./build/bench/bench_infer

echo
echo "== bench_search smoke (population-search harness) =="
# A tiny fixed-wall-clock run of the src/search/ harness on the
# training-free approximation oracle: exercises every optimizer end to end
# (batch feeding, plan discipline, diagnostics) without training a model.
CHAINNET_SEARCH_SECONDS=0.1 \
CHAINNET_SEARCH_ORACLE=approx \
CHAINNET_SEARCH_PROBLEMS=1 \
CHAINNET_SEARCH_OUT=build/BENCH_search_smoke.json \
  ./build/bench/bench_search

echo
echo "== tier 2: AddressSanitizer + UBSan =="
scripts/check_asan.sh "$@"

echo
echo "== tier 2: ThreadSanitizer =="
scripts/check_tsan.sh "$@"

echo
echo "All checks passed."
