#!/usr/bin/env bash
# The full pre-merge gate: tier-1 build + tests, then both sanitizer
# suites (scripts/check_asan.sh, scripts/check_tsan.sh).
#
# Usage: scripts/check_all.sh [extra ctest args...]
#
# Extra arguments are forwarded to every ctest invocation. Each stage uses
# its own build directory (build, build-asan, build-tsan), so incremental
# reruns are cheap.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier 1: build + ctest (build/) =="
cmake -B build -S .
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)" "$@"

echo
echo "== bench_infer smoke (batched/fused parity gate) =="
# bench_infer refuses to emit numbers unless the fused + batched paths
# reproduce the reference forward bit-for-bit, so a short run doubles as a
# parity check on the exact host ISA tier in use.
CHAINNET_INFER_SECONDS=0.05 \
CHAINNET_INFER_OUT=build/BENCH_infer_smoke.json \
  ./build/bench/bench_infer

echo
echo "== tier 2: AddressSanitizer + UBSan =="
scripts/check_asan.sh "$@"

echo
echo "== tier 2: ThreadSanitizer =="
scripts/check_tsan.sh "$@"

echo
echo "All checks passed."
