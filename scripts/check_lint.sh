#!/usr/bin/env bash
# Standalone tier-0 gate: chainnet_lint over the production tree and its own
# sources, plus the lint test suites, under a wall-clock budget. Static
# analysis only stays the *first* stage of check_all.sh while it stays
# cheap — the budget assertion turns a perf regression in the analyzer into
# a failing check instead of a slowly rotting gate.
#
# Usage: scripts/check_lint.sh [extra ctest args...]
#   LINT_BUDGET_MS   analysis budget in milliseconds (default 5000)
#   SKIP_LINT_TESTS  set to 1 to run only the analysis, not lint_* ctest
set -euo pipefail

cd "$(dirname "$0")/.."

BUDGET_MS="${LINT_BUDGET_MS:-5000}"

cmake -B build -S . -DCHAINNET_WERROR=ON
cmake --build build -j "$(nproc)" --target chainnet_lint lint_test \
  lint_model_test

# The budget covers the analysis run itself (phase 1 lex + model, phase 2
# cross-file rules) over src/ and tools/lint — the trees lint_src gates.
start_ns=$(date +%s%N)
./build/tools/chainnet_lint src tools/lint
end_ns=$(date +%s%N)
elapsed_ms=$(((end_ns - start_ns) / 1000000))
echo "chainnet_lint: clean in ${elapsed_ms}ms (budget ${BUDGET_MS}ms)"
if [ "${elapsed_ms}" -gt "${BUDGET_MS}" ]; then
  echo "chainnet_lint: analysis exceeded its ${BUDGET_MS}ms wall-clock" \
    "budget — profile before growing the gate" >&2
  exit 1
fi

if [ "${SKIP_LINT_TESTS:-0}" != "1" ]; then
  ctest --test-dir build -R '^lint' --output-on-failure "$@"
fi
