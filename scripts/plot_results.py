#!/usr/bin/env python3
"""Plot the CSV series emitted by the bench drivers.

The benches write their figure data to chainnet_cache/<scale>/*.csv; this
script turns them into PNGs alongside the CSVs. Matplotlib is the only
dependency and the script degrades gracefully when a CSV is missing.

Usage: scripts/plot_results.py [cache_dir]   (default chainnet_cache/small)
"""

import csv
import pathlib
import sys


def read_csv(path):
    with open(path) as fh:
        rows = list(csv.reader(fh))
    header, data = rows[0], rows[1:]
    return header, data


def plot_fig11(plt, cache):
    path = cache / "fig11_mape.csv"
    if not path.exists():
        return
    header, data = read_csv(path)
    models = [row[0] for row in data]
    series = {name: [float(row[i + 1]) for row in data]
              for i, name in enumerate(header[1:])}
    fig, ax = plt.subplots(figsize=(7, 4))
    x = range(len(models))
    width = 0.2
    for i, (name, values) in enumerate(series.items()):
        ax.bar([v + (i - 1.5) * width for v in x], values, width, label=name)
    ax.set_xticks(list(x), models)
    ax.set_ylabel("MAPE")
    ax.set_title("Fig. 11: MAPE by model and test set")
    ax.legend()
    fig.tight_layout()
    fig.savefig(cache / "fig11_mape.png", dpi=150)
    print(f"wrote {cache / 'fig11_mape.png'}")


def plot_fig13(plt, cache):
    path = cache / "fig13_losscurves.csv"
    if not path.exists():
        return
    header, data = read_csv(path)
    epochs = [float(row[0]) for row in data]
    fig, ax = plt.subplots(figsize=(7, 4))
    for i, name in enumerate(header[1:]):
        values = [float(row[i + 1]) for row in data]
        style = "-" if name.endswith("train") else "--"
        ax.plot(epochs, values, style, label=name)
    ax.set_yscale("log")
    ax.set_xlabel("epoch")
    ax.set_ylabel("loss (log scale)")
    ax.set_title("Fig. 13: training/validation loss, ChainNet + ablations")
    ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(cache / "fig13_losscurves.png", dpi=150)
    print(f"wrote {cache / 'fig13_losscurves.png'}")


def plot_curves(plt, cache, stem, x_label, title):
    path = cache / f"{stem}.csv"
    if not path.exists():
        return
    header, data = read_csv(path)
    xs = [float(row[0]) for row in data]
    fig, ax = plt.subplots(figsize=(7, 4))
    for i, name in enumerate(header[1:]):
        values = [float(row[i + 1]) for row in data]
        ax.plot(xs, values, marker="o", label=name)
    ax.set_xlabel(x_label)
    ax.set_title(title)
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(cache / f"{stem}.png", dpi=150)
    print(f"wrote {cache / (stem + '.png')}")


def main():
    cache = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                         else "chainnet_cache/small")
    if not cache.is_dir():
        sys.exit(f"cache directory {cache} not found; run the benches first")
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib not available; CSVs remain usable as-is")
    plot_fig11(plt, cache)
    plot_fig13(plt, cache)
    plot_curves(plt, cache, "fig14cd_curves", "fraction of time budget",
                "Fig. 14c-d: fixed-time search")
    plot_curves(plt, cache, "fig15_curves", "search step",
                "Fig. 15: fixed-steps search")


if __name__ == "__main__":
    main()
