#!/usr/bin/env bash
# Build the tensor/gnn test suites under AddressSanitizer + UBSan and run
# them.
#
# Usage: scripts/check_asan.sh [extra ctest args...]
#
# Uses the "asan-ubsan" CMake preset (build dir: build-asan). The filter
# covers the arena-tape substrate and everything layered on it — autodiff
# ops, modules, optimizers, serialization, ChainNet and the baselines,
# gradient checks, the fast-inference equivalence suite, and the trainer —
# the code where a bump-allocator bug (stale buffer, out-of-bounds scatter,
# use-after-release) would surface. It also covers the untrusted-input
# paths (JSON parser, serve protocol + loopback hostile requests), where
# UBSan catches things like float-to-int casts of client-chosen values.
# plan_test joins because plan replay indexes a single arena-planned
# scratch buffer with precomputed offsets — exactly the kind of code where
# an off-by-one region size becomes an out-of-bounds write. kernels_f32_test
# joins for the reduced-precision tier (f32 packing caches + tile scratch
# share the f64 tier's buffer-reuse idioms), and f64_golden_test keeps the
# double-precision goldens honest under instrumentation.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build build-asan -j "$(nproc)" \
  --target autograd_test tape_test nn_test optimizer_test serialize_test \
  baselines_test baseline_gradcheck_test chainnet_test \
  chainnet_gradcheck_test chainnet_inference_test chainnet_batch_test \
  kernels_test kernels_f32_test f64_golden_test graph_workspace_test \
  plan_test trainer_test \
  invariance_test json_test serve_protocol_test serve_loopback_test \
  consistent_hash_test registry_test router_test search_test \
  chainnet_lint lint_test

# The linter recurses over directories and slices raw bytes out of source
# files, so it gets an ASan pass over both src/ and the fixture corpus
# (lint_test drives it over every fixture, including the failing ones).
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  ctest --test-dir build-asan \
  -R '(autograd|tape|nn|optimizer|serialize|baselines|baseline_gradcheck|chainnet|chainnet_gradcheck|chainnet_inference|chainnet_batch|kernels|kernels_f32|f64_golden|graph_workspace|plan|trainer|invariance|json|serve_protocol|serve_loopback|consistent_hash|registry|router|search|lint)_test' \
  --output-on-failure "$@"

echo "ASan+UBSan check passed."
