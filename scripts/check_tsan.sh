#!/usr/bin/env bash
# Build the concurrent-runtime tests under ThreadSanitizer and run them.
#
# Usage: scripts/check_tsan.sh [extra ctest args...]
#
# Uses the "tsan" CMake preset (build dir: build-tsan). Only the runtime
# and serving tests are built and run -- they exercise every lock and
# atomic in src/runtime and src/serve (accept loop, reader threads,
# flusher, metrics) plus the parallel SA drivers and the batched GNN
# forward's fan-out across pool workers (chainnet_batch_test covers the
# kernels' thread-local packing scratch); building the whole tree under
# TSan would be slow and adds no coverage. registry_test and router_test
# join the gate because they are the concurrency-heavy scale-out paths:
# hot-swap atomicity under a concurrent reader, and the router's health
# thread racing request dispatch and the metrics endpoint. plan_test runs
# here for the PlanCache: concurrent first lookups of one key must produce
# exactly one compile under the shard lock, and replay through a shared
# read-only plan must stay race-free across pool workers. search_test runs
# the population optimizers, whose every step fans a width-K batch across
# the pool while the driver thread owns all the RNG state. kernels_f32_test
# and f64_golden_test join because the reduced-precision tier adds its own
# thread-local tile scratch and once-per-process ISA/dtype resolution —
# the same publication patterns TSan is here to police.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build build-tsan -j "$(nproc)" \
  --target thread_pool_test eval_cache_test parallel_anneal_test \
  chainnet_batch_test serve_metrics_test serve_loopback_test \
  registry_test plan_test router_test search_test \
  kernels_f32_test f64_golden_test \
  chainnet_lint lint_test

# chainnet_lint is single-threaded, but running lint_test here keeps the
# lock-discipline rules themselves green in the same gate that exercises
# the locks they reason about.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir build-tsan \
  -R '(thread_pool|eval_cache|parallel_anneal|chainnet_batch|serve_metrics|serve_loopback|registry|plan|search|kernels_f32|f64_golden|lint)_test|^router_test$' \
  --output-on-failure "$@"

echo "TSan check passed."
