#!/usr/bin/env bash
# Run clang-tidy (profile: .clang-tidy at the repo root) over the first-party
# translation units, using the compile database that every configure of
# build/ exports (CMAKE_EXPORT_COMPILE_COMMANDS is on unconditionally).
#
# Usage: scripts/check_tidy.sh [extra clang-tidy args...]
#
# This is an optional, advisory gate: the container image does not ship
# clang-tidy, so the script skips with a clear message instead of failing
# when the tool is absent. chainnet_lint (tier 0 of check_all.sh) carries
# the repo-specific contracts either way.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "check_tidy: clang-tidy not found on PATH -- skipping." >&2
  echo "check_tidy: install LLVM's clang-tidy to run the bugprone-*," >&2
  echo "check_tidy: concurrency-*, and performance-* checks locally." >&2
  exit 0
fi

if [ ! -f build/compile_commands.json ]; then
  echo "check_tidy: build/compile_commands.json missing; configuring." >&2
  cmake -B build -S .
fi

# Tidy the hand-written translation units: the library tree, the tools, and
# the test drivers. Generated/fixture sources are excluded -- lint fixtures
# are deliberately wrong and are never compiled.
mapfile -t sources < <(find src tools tests -name '*.cpp' \
  -not -path 'tests/lint_fixtures/*' | sort)

echo "check_tidy: running clang-tidy over ${#sources[@]} files."
clang-tidy -p build --quiet "$@" "${sources[@]}"

echo "clang-tidy check passed."
