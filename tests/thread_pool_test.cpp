#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace chainnet::runtime {
namespace {

TEST(ThreadPool, RunsEveryTaskAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.worker_index_here(), -1);  // caller is not a worker
  auto index = pool.submit([&pool] { return pool.worker_index_here(); });
  const int worker = index.get();
  EXPECT_GE(worker, 0);
  EXPECT_LT(worker, pool.size());
}

TEST(ThreadPool, WorkerIndexDoesNotLeakAcrossPools) {
  ThreadPool a(1);
  ThreadPool b(1);
  // A worker of `a` is not a worker of `b`.
  auto cross = a.submit([&b] { return b.worker_index_here(); });
  EXPECT_EQ(cross.get(), -1);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto failing = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(
      {
        try {
          failing.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ShutdownDrainsPendingTasksAndJoins) {
  std::atomic<int> completed{0};
  ThreadPool pool(2);
  for (int i = 0; i < 50; ++i) {
    pool.submit([&completed] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ++completed;
    });
  }
  pool.shutdown();
  EXPECT_EQ(completed.load(), 50);
  EXPECT_THROW(pool.submit([] { return 0; }), std::runtime_error);
  pool.shutdown();  // idempotent
}

// Serving-layer contract (the flusher and readers park work here during
// graceful shutdown): every task submitted before shutdown() runs — even
// ones that throw — and the exceptions come out of the futures, never
// std::terminate.
TEST(ThreadPool, ThrowingTasksPendingAtShutdownRunAndDeliverExceptions) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i, &ran] {
      ++ran;
      if (i % 2 == 0) throw std::runtime_error("boom");
    }));
  }
  pool.shutdown();
  EXPECT_EQ(ran.load(), 64);  // nothing was dropped by the drain
  int caught = 0;
  for (int i = 0; i < 64; ++i) {
    auto& f = futures[static_cast<std::size_t>(i)];
    if (i % 2 == 0) {
      EXPECT_THROW(f.get(), std::runtime_error);
      ++caught;
    } else {
      EXPECT_NO_THROW(f.get());
    }
  }
  EXPECT_EQ(caught, 32);
}

TEST(ThreadPool, DiscardedFutureOfThrowingTaskDoesNotTerminate) {
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      // Future intentionally dropped: the stored exception dies with the
      // shared state instead of escaping a worker thread.
      pool.submit([] { throw std::runtime_error("dropped"); });
    }
  }
  SUCCEED();
}

TEST(ThreadPool, SubmitRacingShutdownEitherRunsOrThrows) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(2);
    std::atomic<int> accepted{0};
    std::atomic<int> ran{0};
    std::thread submitter([&] {
      for (int i = 0; i < 200; ++i) {
        try {
          pool.submit([&ran] { ++ran; });
          ++accepted;
        } catch (const std::runtime_error&) {
          break;  // pool is shutting down; later submits must also throw
        }
      }
    });
    pool.shutdown();
    submitter.join();
    // Accepted-before-shutdown implies executed: no silent drops.
    EXPECT_EQ(ran.load(), accepted.load());
  }
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&completed] { ++completed; });
    }
  }
  EXPECT_EQ(completed.load(), 64);
}

}  // namespace
}  // namespace chainnet::runtime
