#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace chainnet::runtime {
namespace {

TEST(ThreadPool, RunsEveryTaskAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.worker_index_here(), -1);  // caller is not a worker
  auto index = pool.submit([&pool] { return pool.worker_index_here(); });
  const int worker = index.get();
  EXPECT_GE(worker, 0);
  EXPECT_LT(worker, pool.size());
}

TEST(ThreadPool, WorkerIndexDoesNotLeakAcrossPools) {
  ThreadPool a(1);
  ThreadPool b(1);
  // A worker of `a` is not a worker of `b`.
  auto cross = a.submit([&b] { return b.worker_index_here(); });
  EXPECT_EQ(cross.get(), -1);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto failing = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(
      {
        try {
          failing.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ShutdownDrainsPendingTasksAndJoins) {
  std::atomic<int> completed{0};
  ThreadPool pool(2);
  for (int i = 0; i < 50; ++i) {
    pool.submit([&completed] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ++completed;
    });
  }
  pool.shutdown();
  EXPECT_EQ(completed.load(), 50);
  EXPECT_THROW(pool.submit([] { return 0; }), std::runtime_error);
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&completed] { ++completed; });
    }
  }
  EXPECT_EQ(completed.load(), 64);
}

}  // namespace
}  // namespace chainnet::runtime
