#include "core/chainnet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/surrogate.h"
#include "edge/graph.h"
#include "test_util.h"

namespace chainnet::core {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;
using support::Rng;

ChainNetConfig tiny_config() {
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  return cfg;
}

edge::PlacementGraph graph_for(const ChainNet& model) {
  return edge::build_graph(small_system(), small_placement(),
                           model.feature_mode());
}

TEST(ChainNet, ConfigPresets) {
  EXPECT_EQ(ChainNetConfig::paper().hidden, 64);
  EXPECT_EQ(ChainNetConfig::paper().iterations, 8);
  EXPECT_FALSE(ChainNetConfig::ablation_alpha().modified_inputs);
  EXPECT_FALSE(ChainNetConfig::ablation_alpha().modified_outputs);
  EXPECT_TRUE(ChainNetConfig::ablation_beta().modified_inputs);
  EXPECT_FALSE(ChainNetConfig::ablation_beta().modified_outputs);
  EXPECT_FALSE(ChainNetConfig::ablation_delta().modified_inputs);
  EXPECT_TRUE(ChainNetConfig::ablation_delta().modified_outputs);
}

TEST(ChainNet, NamesReflectAblation) {
  Rng rng(1);
  EXPECT_EQ(ChainNet(tiny_config(), rng).name(), "ChainNet");
  auto a = tiny_config();
  a.modified_inputs = a.modified_outputs = false;
  EXPECT_EQ(ChainNet(a, rng).name(), "ChainNet-alpha");
  auto b = tiny_config();
  b.modified_outputs = false;
  EXPECT_EQ(ChainNet(b, rng).name(), "ChainNet-beta");
  auto d = tiny_config();
  d.modified_inputs = false;
  EXPECT_EQ(ChainNet(d, rng).name(), "ChainNet-delta");
  auto na = tiny_config();
  na.attention_aggregation = false;
  EXPECT_EQ(ChainNet(na, rng).name(), "ChainNet-noattn");
}

TEST(ChainNet, RejectsBadConfig) {
  Rng rng(2);
  auto cfg = tiny_config();
  cfg.hidden = 0;
  EXPECT_THROW(ChainNet(cfg, rng), std::invalid_argument);
  cfg = tiny_config();
  cfg.iterations = 0;
  EXPECT_THROW(ChainNet(cfg, rng), std::invalid_argument);
}

TEST(ChainNet, ForwardProducesBothHeadsInRange) {
  Rng rng(3);
  ChainNet model(tiny_config(), rng);
  const auto out = model.forward(graph_for(model));
  ASSERT_EQ(out.size(), 2u);
  for (const auto& o : out) {
    ASSERT_TRUE(o.throughput.defined());
    ASSERT_TRUE(o.latency.defined());
    EXPECT_GT(o.throughput.item(), 0.0);
    EXPECT_LT(o.throughput.item(), 1.0);
    EXPECT_GT(o.latency.item(), 0.0);
    EXPECT_LT(o.latency.item(), 1.0);
  }
}

TEST(ChainNet, DeterministicForward) {
  Rng rng(4);
  ChainNet model(tiny_config(), rng);
  const auto g = graph_for(model);
  EXPECT_DOUBLE_EQ(model.forward(g)[0].throughput.item(),
                   model.forward(g)[0].throughput.item());
}

TEST(ChainNet, SensitiveToPlacementChanges) {
  Rng rng(5);
  ChainNet model(tiny_config(), rng);
  const auto sys = small_system();
  const auto g1 = edge::build_graph(sys, small_placement(),
                                    model.feature_mode());
  edge::Placement other(std::vector<std::vector<int>>{{3, 1, 2}, {1, 0}});
  const auto g2 = edge::build_graph(sys, other, model.feature_mode());
  EXPECT_NE(model.forward(g1)[0].throughput.item(),
            model.forward(g2)[0].throughput.item());
}

TEST(ChainNet, SensitiveToArrivalRate) {
  Rng rng(6);
  ChainNet model(tiny_config(), rng);
  auto sys = small_system();
  const auto g1 = edge::build_graph(sys, small_placement(),
                                    model.feature_mode());
  sys.chains[0].arrival_rate = 5.0;
  const auto g2 = edge::build_graph(sys, small_placement(),
                                    model.feature_mode());
  EXPECT_NE(model.forward(g1)[0].throughput.item(),
            model.forward(g2)[0].throughput.item());
}

TEST(ChainNet, GradientsReachAllParameterGroups) {
  Rng rng(7);
  ChainNet model(tiny_config(), rng);
  const auto g = graph_for(model);
  const auto out = model.forward(g);
  tensor::Var loss = tensor::add(
      tensor::add(out[0].throughput, out[0].latency),
      tensor::add(out[1].throughput, out[1].latency));
  loss.backward();
  std::size_t nonzero_params = 0;
  for (auto* p : model.parameters()) {
    bool touched = false;
    for (double gr : p->var.grad()) touched |= gr != 0.0;
    if (touched) ++nonzero_params;
  }
  // Encoders, GRUs, attention and both MLP heads all participate: the
  // shared device (device 1) guarantees the attention path is exercised.
  EXPECT_GT(nonzero_params, model.parameters().size() * 3 / 4);
}

TEST(ChainNet, SingleFragmentChainWorks) {
  Rng rng(8);
  ChainNet model(tiny_config(), rng);
  edge::EdgeSystem sys;
  sys.devices = {{"d0", 10.0, 1.0}, {"d1", 10.0, 1.0}};
  edge::ServiceChainSpec chain;
  chain.name = "solo";
  chain.arrival_rate = 1.0;
  chain.fragments = {{1.0, 0.5}};
  sys.chains = {chain};
  edge::Placement p(std::vector<std::vector<int>>{{0}});
  const auto g = edge::build_graph(sys, p, model.feature_mode());
  const auto out = model.forward(g);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(std::isfinite(out[0].throughput.item()));
}

TEST(ChainNet, MeanAttentionVariantRuns) {
  Rng rng(9);
  auto cfg = tiny_config();
  cfg.attention_aggregation = false;
  ChainNet model(cfg, rng);
  const auto out = model.forward(graph_for(model));
  EXPECT_TRUE(std::isfinite(out[0].throughput.item()));
}

TEST(ChainNet, RawOutputAblationsAreUnbounded) {
  Rng rng(10);
  auto cfg = tiny_config();
  cfg.modified_outputs = false;
  ChainNet model(cfg, rng);
  EXPECT_FALSE(model.ratio_outputs());
  EXPECT_EQ(model.feature_mode(), edge::FeatureMode::kModified);
  // Forward still runs and produces finite values.
  const auto out = model.forward(graph_for(model));
  EXPECT_TRUE(std::isfinite(out[0].throughput.item()));
}

TEST(ChainNet, ParameterCountMatchesArchitecture) {
  Rng rng(11);
  ChainNet model(tiny_config(), rng);
  const std::size_t h = 8;
  // Encoders: (1+3+1) inputs -> h with bias.
  const std::size_t enc = (1 * h + h) + (3 * h + h) + (1 * h + h);
  // Three GRUs with input 2h: 3 * (3*(h*2h) + 3*(h*h) + 6h).
  const std::size_t gru = 3 * (3 * (h * 2 * h) + 3 * (h * h) + 6 * h);
  // Attention: 2 heads * (h*3h + h + 2h*2h).
  const std::size_t attn = 2 * (h * 3 * h + h + 2 * h * 2 * h);
  // Two MLP heads: (h*h + h) + (h*1 + 1) each.
  const std::size_t mlp = 2 * ((h * h + h) + (h + 1));
  EXPECT_EQ(model.parameter_count(), enc + gru + attn + mlp);
}

TEST(Surrogate, TotalThroughputSumsDecodedChains) {
  Rng rng(12);
  ChainNet model(tiny_config(), rng);
  Surrogate surrogate(model);
  const auto sys = small_system();
  const auto preds = surrogate.predict(sys, small_placement());
  ASSERT_EQ(preds.size(), 2u);
  double manual = preds[0].throughput + preds[1].throughput;
  EXPECT_NEAR(surrogate.total_throughput(sys, small_placement()), manual,
              1e-12);
  // Ratio decoding bounds throughput by the arrival rate.
  EXPECT_LE(preds[0].throughput, 0.8 + 1e-9);
  EXPECT_LE(preds[1].throughput, 0.4 + 1e-9);
}

}  // namespace
}  // namespace chainnet::core
