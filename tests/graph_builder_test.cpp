#include "edge/graph.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace chainnet::edge {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;

TEST(GraphBuilder, NodeCountsFollowAlgorithm1) {
  const auto g =
      build_graph(small_system(), small_placement(), FeatureMode::kModified);
  // C + sum(T_i) + d = 2 + 5 + 4.
  EXPECT_EQ(g.num_chains, 2);
  EXPECT_EQ(g.num_fragments(), 5);
  EXPECT_EQ(g.num_devices(), 4);
  EXPECT_EQ(g.num_nodes(), 11);
}

TEST(GraphBuilder, UnusedDevicesGetNoNode) {
  // Only devices 0 and 1 used => d = 2 device nodes.
  Placement p(std::vector<std::vector<int>>{{0, 1, 0}, {1, 0}});
  // Device 0 repeats within chain 0 -> invalid; use a valid variant.
  Placement valid(std::vector<std::vector<int>>{{0, 1, 2}, {1, 0}});
  const auto g =
      build_graph(small_system(), valid, FeatureMode::kModified);
  EXPECT_EQ(g.num_devices(), 3);
  EXPECT_EQ(g.device_node_device, (std::vector<int>{0, 1, 2}));
}

TEST(GraphBuilder, SequencesPreserveExecutionOrder) {
  const auto g =
      build_graph(small_system(), small_placement(), FeatureMode::kModified);
  ASSERT_EQ(g.sequences.size(), 2u);
  EXPECT_EQ(g.sequences[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(g.sequences[1], (std::vector<int>{3, 4}));
  for (int i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < g.sequences[i].size(); ++j) {
      const auto& step = g.steps[g.sequences[i][j]];
      EXPECT_EQ(step.chain, i);
      EXPECT_EQ(step.position, static_cast<int>(j));
    }
  }
}

TEST(GraphBuilder, DeviceStepIndexIsInverse) {
  const auto g =
      build_graph(small_system(), small_placement(), FeatureMode::kModified);
  // Shared device 1 hosts steps 1 (chain 0 frag 1) and 3 (chain 1 frag 0).
  int shared_node = -1;
  for (int n = 0; n < g.num_devices(); ++n) {
    if (g.device_node_device[n] == 1) shared_node = n;
  }
  ASSERT_GE(shared_node, 0);
  EXPECT_EQ(g.device_node_steps[shared_node], (std::vector<int>{1, 3}));
  // Every step appears in exactly one device node's list.
  std::multiset<int> all_steps;
  for (const auto& steps : g.device_node_steps) {
    all_steps.insert(steps.begin(), steps.end());
  }
  EXPECT_EQ(all_steps.size(), 5u);
  for (int s = 0; s < 5; ++s) EXPECT_EQ(all_steps.count(s), 1u);
}

TEST(GraphBuilder, EdgeCountMatchesAlgorithm1) {
  const auto g =
      build_graph(small_system(), small_placement(), FeatureMode::kModified);
  // Placement edges: one per fragment (5). Workflow edges: T_i - 1 per
  // chain (2 + 1).
  EXPECT_EQ(g.edges.size(), 5u + 3u);
}

TEST(GraphBuilder, WorkflowEdgesGoDeviceToNextFragment) {
  const auto g =
      build_graph(small_system(), small_placement(), FeatureMode::kModified);
  // The workflow edge after step 0 (chain 0, device 0) points to the
  // fragment node of step 1.
  bool found = false;
  for (const auto& e : g.edges) {
    if (e.src == g.device_node_id(g.steps[0].device_node) &&
        e.dst == g.fragment_node_id(1)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GraphBuilder, ServiceNodesAreIsolated) {
  const auto g =
      build_graph(small_system(), small_placement(), FeatureMode::kModified);
  for (const auto& e : g.edges) {
    EXPECT_GE(e.src, g.num_chains);
    EXPECT_GE(e.dst, g.num_chains);
  }
}

TEST(GraphBuilder, ModifiedFeaturesMatchTableII) {
  const auto sys = small_system();
  const auto p = small_placement();
  const auto g = build_graph(sys, p, FeatureMode::kModified);
  // Service feature is the constant 1.
  EXPECT_DOUBLE_EQ(g.service_features[0][0], 1.0);
  EXPECT_DOUBLE_EQ(g.service_features[1][0], 1.0);
  // Step 1 = chain 0 fragment 1 on device 1 (rate 1): t_p = 0.7.
  // lambda_0 = 0.8; delta_t(dev1) = 0.7 + 0.2; m = 1; M = 50.
  const auto& f = g.fragment_features[1];
  EXPECT_NEAR(f[0], 0.7 * 0.8, 1e-12);
  EXPECT_NEAR(f[1], 0.7 / 0.9, 1e-12);
  EXPECT_NEAR(f[2], 1.0 / 50.0, 1e-12);
  // Device feature for device 1: delta_m / M = 2 / 50.
  int shared_node = -1;
  for (int n = 0; n < g.num_devices(); ++n) {
    if (g.device_node_device[n] == 1) shared_node = n;
  }
  EXPECT_NEAR(g.device_features[shared_node][0], 2.0 / 50.0, 1e-12);
}

TEST(GraphBuilder, OriginalFeaturesAreRaw) {
  const auto sys = small_system();
  const auto g = build_graph(sys, small_placement(), FeatureMode::kOriginal);
  EXPECT_DOUBLE_EQ(g.service_features[0][0], 0.8);  // lambda_1
  const auto& f = g.fragment_features[1];
  EXPECT_DOUBLE_EQ(f[0], 0.7);  // t_p
  EXPECT_DOUBLE_EQ(f[1], 1.0);  // m
  EXPECT_DOUBLE_EQ(f[2], 0.0);  // padding
  EXPECT_DOUBLE_EQ(g.device_features[0][0], 50.0);  // M_k
}

TEST(GraphBuilder, DenormalizationContext) {
  const auto sys = small_system();
  const auto g = build_graph(sys, small_placement(), FeatureMode::kModified);
  EXPECT_DOUBLE_EQ(g.arrival_rate[0], 0.8);
  EXPECT_DOUBLE_EQ(g.arrival_rate[1], 0.4);
  // Chain 0 on devices 0,1,2 (rates 1,1,2): 0.5 + 0.7 + 0.15.
  EXPECT_NEAR(g.total_processing[0], 1.35, 1e-12);
  // Chain 1 on devices 1,3 (rates 1,0.5): 0.2 + 1.8.
  EXPECT_NEAR(g.total_processing[1], 2.0, 1e-12);
}

TEST(GraphBuilder, ProcessingTimeDependsOnPlacement) {
  const auto sys = small_system();
  Placement a(std::vector<std::vector<int>>{{0, 1, 2}, {1, 3}});
  Placement b(std::vector<std::vector<int>>{{3, 1, 2}, {1, 3}});
  const auto ga = build_graph(sys, a, FeatureMode::kOriginal);
  const auto gb = build_graph(sys, b, FeatureMode::kOriginal);
  // Fragment (0,0) moves from rate-1 device 0 to rate-0.5 device 3.
  EXPECT_DOUBLE_EQ(ga.fragment_features[0][0], 0.5);
  EXPECT_DOUBLE_EQ(gb.fragment_features[0][0], 1.0);
}

TEST(GraphBuilder, RejectsInvalidPlacement) {
  Placement incomplete(small_system());
  EXPECT_THROW(
      build_graph(small_system(), incomplete, FeatureMode::kModified),
      std::invalid_argument);
}

TEST(GraphBuilder, HomogeneousNodeIdRanges) {
  const auto g =
      build_graph(small_system(), small_placement(), FeatureMode::kModified);
  EXPECT_EQ(g.service_node_id(1), 1);
  EXPECT_EQ(g.fragment_node_id(0), 2);
  EXPECT_EQ(g.fragment_node_id(4), 6);
  EXPECT_EQ(g.device_node_id(0), 7);
  EXPECT_EQ(g.device_node_id(3), 10);
}

}  // namespace
}  // namespace chainnet::edge
