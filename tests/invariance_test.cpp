// Structural invariance properties of the surrogate stack:
//  * device relabeling: renaming/reordering device indices (an arbitrary
//    choice of the system description) must not change any chain's
//    prediction;
//  * chain reordering: permuting the chains must permute the outputs;
//  * unused devices: adding devices that no fragment uses must not change
//    predictions (they do not appear in the graph at all).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/chainnet.h"
#include "edge/graph.h"
#include "gnn/model.h"
#include "support/rng.h"
#include "test_util.h"

namespace chainnet::core {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;
using support::Rng;

ChainNet make_model(std::uint64_t seed = 5) {
  Rng rng(seed);
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 3;
  return ChainNet(cfg, rng);
}

std::vector<gnn::ChainPerf> predict(ChainNet& model,
                                    const edge::EdgeSystem& sys,
                                    const edge::Placement& p) {
  const auto g = edge::build_graph(sys, p, model.feature_mode());
  return gnn::predict_physical(model, g);
}

TEST(Invariance, DeviceRelabelingPreservesPredictions) {
  auto model = make_model();
  const auto sys = small_system();
  const auto base = predict(model, sys, small_placement());

  // Swap devices 0 and 3 everywhere (specs and assignments).
  auto permuted_sys = sys;
  std::swap(permuted_sys.devices[0], permuted_sys.devices[3]);
  edge::Placement permuted(std::vector<std::vector<int>>{{3, 1, 2}, {1, 0}});
  const auto renamed = predict(model, permuted_sys, permuted);

  ASSERT_EQ(base.size(), renamed.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(base[i].throughput, renamed[i].throughput, 1e-9);
    EXPECT_NEAR(base[i].latency, renamed[i].latency, 1e-9);
  }
}

TEST(Invariance, ChainReorderingPermutesOutputs) {
  auto model = make_model();
  const auto sys = small_system();
  const auto base = predict(model, sys, small_placement());

  auto swapped_sys = sys;
  std::swap(swapped_sys.chains[0], swapped_sys.chains[1]);
  edge::Placement swapped(std::vector<std::vector<int>>{{1, 3}, {0, 1, 2}});
  const auto permuted = predict(model, swapped_sys, swapped);

  ASSERT_EQ(permuted.size(), 2u);
  EXPECT_NEAR(permuted[0].throughput, base[1].throughput, 1e-9);
  EXPECT_NEAR(permuted[1].throughput, base[0].throughput, 1e-9);
  EXPECT_NEAR(permuted[0].latency, base[1].latency, 1e-9);
  EXPECT_NEAR(permuted[1].latency, base[0].latency, 1e-9);
}

TEST(Invariance, UnusedDevicesAreIgnored) {
  auto model = make_model();
  const auto sys = small_system();
  const auto base = predict(model, sys, small_placement());

  auto extended = sys;
  extended.devices.push_back({"idle-1", 30.0, 3.0});
  extended.devices.push_back({"idle-2", 80.0, 0.1});
  const auto same = predict(model, extended, small_placement());

  ASSERT_EQ(base.size(), same.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(base[i].throughput, same[i].throughput, 1e-12);
    EXPECT_NEAR(base[i].latency, same[i].latency, 1e-12);
  }
}

TEST(Invariance, FragmentOrderWithinChainMatters) {
  // The execution sequence is directional: reversing a chain's fragments
  // is a *different* deployment and should generally predict differently.
  auto model = make_model();
  auto sys = small_system();
  // Make the two fragments of chain 1 distinguishable in compute.
  sys.chains[1].fragments[0].compute_demand = 0.1;
  sys.chains[1].fragments[1].compute_demand = 1.5;
  const auto forward = predict(model, sys, small_placement());
  auto reversed_sys = sys;
  std::reverse(reversed_sys.chains[1].fragments.begin(),
               reversed_sys.chains[1].fragments.end());
  const auto reversed = predict(model, reversed_sys, small_placement());
  EXPECT_NE(forward[1].latency, reversed[1].latency);
}

}  // namespace
}  // namespace chainnet::core
