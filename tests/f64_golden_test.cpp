// f64 non-regression goldens for the default inference tier: the reduced-
// precision work (DESIGN.md §15) promises the f64 path stays bit-for-bit
// identical — the f32 executors are separate functions and the f64 kernels
// are untouched — and this test pins that promise to literal values.
// forward_values / forward_values_batch on a fixed system, fixed init
// seeds, and the baseline kernel ISA must reproduce these %.17g doubles
// EXACTLY on every machine; any diff means the f64 engine's arithmetic
// changed and is a release blocker, not a tolerance tweak.
//
// The custom main() forces CHAINNET_KERNEL_ISA=baseline before the first
// kernel call (the dispatch table resolves once per process): the baseline
// tier is the only one every build machine shares, which is what makes
// literal goldens portable. Cross-tier equality is pinned separately
// (kernels_test, chainnet_batch_test run per-tier via ctest ENVIRONMENT).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/chainnet.h"
#include "edge/graph.h"
#include "support/rng.h"
#include "test_util.h"

namespace chainnet::core {
namespace {

struct Golden {
  double throughput;
  double latency;
};

void expect_exact(const std::vector<gnn::ChainValues>& out,
                  const std::vector<Golden>& golden) {
  ASSERT_EQ(out.size(), golden.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_TRUE(out[i].has_throughput);
    ASSERT_TRUE(out[i].has_latency);
    // EXPECT_EQ on doubles on purpose: the bar is bit-identity.
    EXPECT_EQ(out[i].throughput, golden[i].throughput) << "chain " << i;
    EXPECT_EQ(out[i].latency, golden[i].latency) << "chain " << i;
  }
}

TEST(F64Golden, ScalarAndBatchForwardReproduceSeedValues) {
  support::Rng rng(42);
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  ChainNet model(cfg, rng);
  const auto g = edge::build_graph(chainnet::testing::small_system(),
                                   chainnet::testing::small_placement(),
                                   model.feature_mode());
  const std::vector<Golden> golden = {
      {0.44760138090678653, 0.56000077468157961},
      {0.44760318290532514, 0.52531863122347211},
  };
  expect_exact(model.forward_values(g), golden);
  // The batched executor shares the contract: every batch lane bit-equal
  // to the scalar path.
  const std::vector<const edge::PlacementGraph*> ptrs{&g, &g, &g};
  const auto batch = model.forward_values_batch(ptrs);
  ASSERT_EQ(batch.size(), 3u);
  for (const auto& lane : batch) expect_exact(lane, golden);
}

TEST(F64Golden, MeanAggregationVariantReproducesSeedValues) {
  support::Rng rng(43);
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  cfg.attention_aggregation = false;
  ChainNet model(cfg, rng);
  const auto g = edge::build_graph(chainnet::testing::small_system(),
                                   chainnet::testing::small_placement(),
                                   model.feature_mode());
  expect_exact(model.forward_values(g),
               {{0.50767832982914174, 0.60644527723765984},
                {0.51530332478720142, 0.58538189430996546}});
}

TEST(F64Golden, PaperConfigReproducesSeedValues) {
  support::Rng rng(44);
  ChainNet model(ChainNetConfig::paper(), rng);
  const auto g = edge::build_graph(chainnet::testing::small_system(),
                                   chainnet::testing::small_placement(),
                                   model.feature_mode());
  expect_exact(model.forward_values(g),
               {{0.4873445592202062, 0.49020981168454048},
                {0.4879890637662691, 0.50009277065035429}});
}

}  // namespace
}  // namespace chainnet::core

int main(int argc, char** argv) {
  // Before InitGoogleTest and before any kernel call: goldens are only
  // portable on the ISA tier every machine has.
  ::setenv("CHAINNET_KERNEL_ISA", "baseline", 1);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
