#include "support/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "support/rng.h"
#include "support/stats.h"

namespace chainnet::support {
namespace {

/// Empirical (mean, variance) over n samples.
std::pair<double, double> sample_moments(const Distribution& d, int n,
                                         std::uint64_t seed = 123) {
  Rng rng(seed);
  RunningStats stats;
  for (int i = 0; i < n; ++i) stats.add(d.sample(rng));
  return {stats.mean(), stats.variance()};
}

TEST(Deterministic, AlwaysReturnsValue) {
  Deterministic d(3.5);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 3.5);
  EXPECT_DOUBLE_EQ(d.mean(), 3.5);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
  EXPECT_DOUBLE_EQ(d.scv(), 0.0);
}

TEST(Deterministic, RejectsNegative) {
  EXPECT_THROW(Deterministic(-1.0), std::invalid_argument);
}

TEST(Exponential, MomentsMatch) {
  Exponential d(0.7);
  EXPECT_DOUBLE_EQ(d.mean(), 0.7);
  EXPECT_NEAR(d.scv(), 1.0, 1e-12);
  const auto [m, v] = sample_moments(d, 300000);
  EXPECT_NEAR(m, 0.7, 0.01);
  EXPECT_NEAR(v, 0.49, 0.02);
}

TEST(Exponential, RejectsNonPositiveMean) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-2.0), std::invalid_argument);
}

TEST(Uniform, MomentsMatch) {
  Uniform d(1.0, 5.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
  EXPECT_NEAR(d.variance(), 16.0 / 12.0, 1e-12);
  const auto [m, v] = sample_moments(d, 200000);
  EXPECT_NEAR(m, 3.0, 0.02);
  EXPECT_NEAR(v, 16.0 / 12.0, 0.03);
}

TEST(Uniform, RejectsInvertedBounds) {
  EXPECT_THROW(Uniform(2.0, 1.0), std::invalid_argument);
}

TEST(LowerBounded, ClampsSamples) {
  LowerBounded d(std::make_unique<Uniform>(0.0, 2.0), 0.5);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(d.sample(rng), 0.5);
}

TEST(LowerBounded, NoEffectWhenFloorBelowSupport) {
  LowerBounded d(std::make_unique<Uniform>(1.0, 2.0), 0.0);
  const auto [m, v] = sample_moments(d, 100000);
  EXPECT_NEAR(m, 1.5, 0.01);
  EXPECT_NEAR(v, 1.0 / 12.0, 0.01);
}

TEST(Clone, PreservesBehaviour) {
  AcyclicPhaseType original(2.0, 5.0);
  auto copy = original.clone();
  Rng a(77), b(77);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(original.sample(a), copy->sample(b));
  }
}

TEST(Aph, RejectsInvalidParameters) {
  EXPECT_THROW(AcyclicPhaseType(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(AcyclicPhaseType(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(AcyclicPhaseType(-1.0, 2.0), std::invalid_argument);
}

TEST(Aph, PhaseCountMatchesScv) {
  EXPECT_EQ(AcyclicPhaseType(1.0, 5.0).phases(), 2);    // hyper-exponential
  EXPECT_EQ(AcyclicPhaseType(1.0, 0.5).phases(), 2);    // Erlang-2 mix
  EXPECT_EQ(AcyclicPhaseType(1.0, 0.25).phases(), 4);   // Erlang-4 mix
  EXPECT_EQ(AcyclicPhaseType(1.0, 0.11).phases(), 10);  // ceil(1/0.11) = 10
}

TEST(Aph, Describe) {
  EXPECT_EQ(AcyclicPhaseType(2.0, 5.0).describe(), "APH(2,5)");
}

/// Two-moment matching must reproduce (mean, SCV) across both fitting
/// branches — the property the Type II generator of Table III relies on.
class AphMomentTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AphMomentTest, EmpiricalMomentsMatchTargets) {
  const auto [mean, scv] = GetParam();
  AcyclicPhaseType d(mean, scv);
  EXPECT_DOUBLE_EQ(d.mean(), mean);
  EXPECT_NEAR(d.scv(), scv, 1e-12);
  Rng rng(4242);
  RunningStats stats;
  const int n = 400000;
  for (int i = 0; i < n; ++i) stats.add(d.sample(rng));
  EXPECT_NEAR(stats.mean(), mean, 0.02 * mean + 5.0 * mean * std::sqrt(scv) /
                                      std::sqrt(static_cast<double>(n)));
  const double empirical_scv =
      stats.variance() / (stats.mean() * stats.mean());
  EXPECT_NEAR(empirical_scv, scv, 0.08 * std::max(scv, 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    MeanScvGrid, AphMomentTest,
    ::testing::Values(std::make_tuple(2.0, 5.0),    // Table III Type II arrivals
                      std::make_tuple(0.1, 10.0),   // Table III Type II service
                      std::make_tuple(1.0, 1.0),    // exponential boundary
                      std::make_tuple(1.0, 2.0),
                      std::make_tuple(3.0, 8.0),
                      std::make_tuple(1.0, 0.5),    // Erlang branch
                      std::make_tuple(2.0, 0.25),
                      std::make_tuple(0.5, 0.34),
                      std::make_tuple(5.0, 0.12)));

TEST(Aph, SamplesArePositive) {
  for (const double scv : {0.2, 0.7, 1.0, 4.0}) {
    AcyclicPhaseType d(1.0, scv);
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) EXPECT_GT(d.sample(rng), 0.0);
  }
}

}  // namespace
}  // namespace chainnet::support
