// Framing and request/response encoding of the serving protocol, exercised
// over socketpairs so the byte-level path (prefix encoding, partial reads,
// truncation, oversize rejection) is the same one the server runs.
#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "edge/placement.h"
#include "serve/client.h"

namespace chainnet::serve {
namespace {

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  }
  ~SocketPair() {
    ::close(fds[0]);
    ::close(fds[1]);
  }
};

TEST(Protocol, FrameRoundTrip) {
  SocketPair pair;
  const std::string sent = R"({"type":"ping"})";
  ASSERT_TRUE(write_frame(pair.fds[0], sent));
  std::string payload;
  std::string error;
  EXPECT_EQ(read_frame(pair.fds[1], payload, error), FrameStatus::kOk);
  EXPECT_EQ(payload, sent);
}

TEST(Protocol, EmptyAndBinaryPayloadsSurvive) {
  SocketPair pair;
  std::string payload;
  std::string error;
  ASSERT_TRUE(write_frame(pair.fds[0], ""));
  EXPECT_EQ(read_frame(pair.fds[1], payload, error), FrameStatus::kOk);
  EXPECT_TRUE(payload.empty());
  std::string binary("\x00\xff\n\x80 frame", 8);
  ASSERT_TRUE(write_frame(pair.fds[0], binary));
  EXPECT_EQ(read_frame(pair.fds[1], payload, error), FrameStatus::kOk);
  EXPECT_EQ(payload, binary);
}

TEST(Protocol, SeveralFramesBackToBack) {
  SocketPair pair;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(write_frame(pair.fds[0], "frame " + std::to_string(i)));
  }
  std::string payload;
  std::string error;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(read_frame(pair.fds[1], payload, error), FrameStatus::kOk);
    EXPECT_EQ(payload, "frame " + std::to_string(i));
  }
}

TEST(Protocol, CleanCloseVsTruncation) {
  {
    SocketPair pair;
    ::close(pair.fds[0]);
    pair.fds[0] = -1;
    std::string payload;
    std::string error;
    // EOF on the prefix boundary is a clean close...
    EXPECT_EQ(read_frame(pair.fds[1], payload, error), FrameStatus::kClosed);
    pair.fds[0] = ::socket(AF_UNIX, SOCK_STREAM, 0);  // for the destructor
  }
  {
    SocketPair pair;
    // ...EOF mid-prefix or mid-payload is a protocol error.
    const char half_prefix[2] = {0, 0};
    ASSERT_EQ(::send(pair.fds[0], half_prefix, 2, 0), 2);
    ::shutdown(pair.fds[0], SHUT_WR);
    std::string payload;
    std::string error;
    EXPECT_EQ(read_frame(pair.fds[1], payload, error), FrameStatus::kError);
    EXPECT_FALSE(error.empty());
  }
  {
    SocketPair pair;
    const char prefix[4] = {0, 0, 0, 10};  // promises 10 bytes
    ASSERT_EQ(::send(pair.fds[0], prefix, 4, 0), 4);
    ASSERT_EQ(::send(pair.fds[0], "abc", 3, 0), 3);  // delivers 3
    ::shutdown(pair.fds[0], SHUT_WR);
    std::string payload;
    std::string error;
    EXPECT_EQ(read_frame(pair.fds[1], payload, error), FrameStatus::kError);
  }
}

TEST(Protocol, HostileLengthPrefixIsRejectedWithoutAllocation) {
  SocketPair pair;
  const char prefix[4] = {'\x7f', '\xff', '\xff', '\xff'};  // ~2 GiB claim
  ASSERT_EQ(::send(pair.fds[0], prefix, 4, 0), 4);
  std::string payload;
  std::string error;
  EXPECT_EQ(read_frame(pair.fds[1], payload, error), FrameStatus::kError);
  EXPECT_NE(error.find("exceeds"), std::string::npos);
  EXPECT_TRUE(payload.empty());  // never resized toward the hostile claim
}

TEST(Protocol, OversizedWriteRefused) {
  SocketPair pair;
  std::string huge(kMaxFramePayload + 1, 'x');
  EXPECT_FALSE(write_frame(pair.fds[0], huge));
}

TEST(Protocol, WriteToClosedPeerFailsInsteadOfSigpipe) {
  SocketPair pair;
  ::close(pair.fds[1]);
  pair.fds[1] = -1;
  const std::string big(1 << 20, 'x');  // larger than any socket buffer
  EXPECT_FALSE(write_frame(pair.fds[0], big));
  pair.fds[1] = ::socket(AF_UNIX, SOCK_STREAM, 0);  // for the destructor
}

TEST(Protocol, ErrorCodeNamesRoundTrip) {
  const ErrorCode codes[] = {
      ErrorCode::kParseError,       ErrorCode::kBadRequest,
      ErrorCode::kUnknownSystem,    ErrorCode::kOverloaded,
      ErrorCode::kDeadlineExceeded, ErrorCode::kShuttingDown,
      ErrorCode::kInternal,
  };
  for (const auto code : codes) {
    const auto name = error_code_name(code);
    const auto back = error_code_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, code);
  }
  EXPECT_FALSE(error_code_from_name("no_such_code").has_value());
}

TEST(Protocol, ResponseBuilders) {
  EXPECT_TRUE(ok_response().at("ok").as_bool());
  const auto err = error_response(ErrorCode::kOverloaded, "queue full");
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ(err.at("error").at("code").as_string(), "overloaded");
  EXPECT_EQ(err.at("error").at("message").as_string(), "queue full");
}

TEST(Protocol, EvalRequestEncodesPlacementsLosslessly) {
  const edge::Placement p(std::vector<std::vector<int>>{{0, 1, 2}, {1, 3}});
  const auto request = make_eval_request({&p, 1}, "default", 2.5);
  EXPECT_EQ(request.at("type").as_string(), "eval");
  EXPECT_EQ(request.at("system").as_string(), "default");
  EXPECT_DOUBLE_EQ(request.at("deadline_ms").as_number(), 2.5);
  const auto& rows = request.at("placements").as_array()[0].as_array();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].as_array()[2].as_number(), 2.0);
  EXPECT_DOUBLE_EQ(rows[1].as_array()[1].as_number(), 3.0);
  // No deadline field when none was requested.
  EXPECT_FALSE(make_eval_request({&p, 1}, "default", 0.0).has("deadline_ms"));
}

}  // namespace
}  // namespace chainnet::serve
