// Finite-difference gradient checks through the complete baseline models
// (GAT with its attention softmax, GIN with learnable epsilon, GCN):
// every parameter's analytic gradient must match central differences of a
// scalar loss built from both heads.
#include <gtest/gtest.h>

#include "gnn/baselines.h"
#include "edge/graph.h"
#include "test_util.h"

namespace chainnet::gnn {
namespace {

using chainnet::testing::expect_gradient_matches;
using chainnet::testing::small_placement;
using chainnet::testing::small_system;
using support::Rng;

template <typename Model>
void run_gradcheck(std::uint64_t seed) {
  Rng rng(seed);
  BaselineConfig cfg;
  cfg.hidden = 4;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.head = PredictionHead::kBoth;
  Model model(cfg, rng);
  const auto g = edge::build_graph(small_system(), small_placement(),
                                   model.feature_mode());
  const auto loss_of = [&]() {
    const auto out = model.forward(g);
    std::vector<tensor::Var> terms;
    double target = 0.25;
    for (const auto& o : out) {
      tensor::Var dt = tensor::add_scalar(o.throughput, -target);
      terms.push_back(tensor::mul(dt, dt));
      tensor::Var dl = tensor::add_scalar(o.latency, -(target + 0.3));
      terms.push_back(tensor::mul(dl, dl));
      target += 0.15;
    }
    return tensor::sum_of(terms);
  };
  loss_of().backward();
  auto rebuild = [&] { return loss_of().item(); };
  for (auto* p : model.parameters()) {
    SCOPED_TRACE(p->name);
    expect_gradient_matches(p->var, rebuild, 1e-6, 3e-4);
  }
}

TEST(BaselineGradCheck, GatFullModel) { run_gradcheck<Gat>(11); }
TEST(BaselineGradCheck, GinFullModel) { run_gradcheck<Gin>(13); }
TEST(BaselineGradCheck, GcnFullModel) { run_gradcheck<Gcn>(17); }

}  // namespace
}  // namespace chainnet::gnn
