// Hash-quality pins for Placement::canonical_hash(): the serving cache
// (runtime::EvalCache, fronting the wire-facing batcher) keys on it, so
// collisions cost spurious equality checks and an unstable hash would
// silently zero the hit rate across processes.
#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "edge/placement.h"
#include "edge/problem.h"
#include "support/rng.h"

namespace chainnet::edge {
namespace {

TEST(PlacementHashQuality, StableAcrossRunsAndProcesses) {
  // Pinned against an independent FNV-1a implementation: the hash is pure
  // content arithmetic (no pointers, no per-process salt), so these values
  // must never change — cache keys persist across server restarts.
  EXPECT_EQ(
      Placement(std::vector<std::vector<int>>{{0, 1, 2}, {1, 3}})
          .canonical_hash(),
      0x02ff0863f4de26acULL);
  EXPECT_EQ(Placement(std::vector<std::vector<int>>{{5}}).canonical_hash(),
            0xf7c1bf7b0e892195ULL);
  EXPECT_EQ(
      Placement(std::vector<std::vector<int>>{{2, 0}, {4, 1, 3}})
          .canonical_hash(),
      0xd01542cecb22b6e9ULL);
}

TEST(PlacementHashQuality, NoCollisionsAcrossGeneratedCorpus) {
  // ~10k distinct placements drawn from a paper-sized problem (20 devices,
  // 12 chains): every distinct assignment must get a distinct hash. A
  // 64-bit hash over 10^4 keys has a birthday collision probability of
  // ~3e-12, so any collision here is a mixing bug, not bad luck.
  support::Rng rng(2024);
  const EdgeSystem system =
      generate_placement_problem(PlacementProblemParams::paper(20), rng);

  std::set<std::vector<std::vector<int>>> distinct;
  std::unordered_set<std::uint64_t> hashes;
  while (distinct.size() < 10000) {
    const Placement placement = random_placement(system, rng);
    if (!distinct.insert(placement.assignment()).second) continue;
    const auto [it, inserted] = hashes.insert(placement.canonical_hash());
    EXPECT_TRUE(inserted) << "collision after " << distinct.size()
                          << " distinct placements";
  }
  EXPECT_EQ(hashes.size(), distinct.size());
}

TEST(PlacementHashQuality, NeighboringMovesAlwaysRehash) {
  // SA neighborhoods are single-fragment moves; the cache must distinguish
  // every one-step neighbor of a base placement.
  support::Rng rng(7);
  const EdgeSystem system =
      generate_placement_problem(PlacementProblemParams::paper(20), rng);
  const Placement base = random_placement(system, rng);
  std::unordered_set<std::uint64_t> hashes{base.canonical_hash()};
  std::size_t neighbors = 0;
  for (int c = 0; c < base.num_chains(); ++c) {
    for (int f = 0; f < base.chain_length(c); ++f) {
      for (int d = 0; d < system.num_devices(); ++d) {
        if (d == base.device_of(c, f)) continue;
        Placement moved = base;
        moved.assign(c, f, d);
        hashes.insert(moved.canonical_hash());
        ++neighbors;
      }
    }
  }
  EXPECT_EQ(hashes.size(), neighbors + 1);  // base plus every neighbor
}

}  // namespace
}  // namespace chainnet::edge
