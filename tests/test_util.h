// Shared helpers for the test suite: finite-difference gradient checking of
// autograd graphs and small factory functions for edge systems.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "edge/model.h"
#include "edge/placement.h"
#include "tensor/tape.h"
#include "tensor/variable.h"

namespace chainnet::testing {

/// Checks d(loss)/d(leaf) for every element of `leaf` against central
/// finite differences of `rebuild`, which must rebuild the scalar loss from
/// current leaf values. `leaf` must require grad and already carry the
/// analytic gradients of one backward() call.
inline void expect_gradient_matches(
    tensor::Var leaf, const std::function<double()>& rebuild,
    double eps = 1e-6, double tol = 1e-5) {
  // Each rebuild() constructs a throwaway loss graph; frame it so the sweep
  // (2 evaluations per element) reuses one tape region instead of growing
  // the arena for thousands of graphs.
  const auto framed_rebuild = [&rebuild] {
    const tensor::Tape::Frame frame(tensor::Tape::current());
    return rebuild();
  };
  for (std::size_t i = 0; i < leaf.size(); ++i) {
    const double original = leaf.value()[i];
    leaf.mutable_value()[i] = original + eps;
    const double up = framed_rebuild();
    leaf.mutable_value()[i] = original - eps;
    const double down = framed_rebuild();
    leaf.mutable_value()[i] = original;
    const double numeric = (up - down) / (2.0 * eps);
    const double analytic = leaf.grad()[i];
    const double scale = std::max({1.0, std::abs(numeric), std::abs(analytic)});
    EXPECT_NEAR(analytic, numeric, tol * scale)
        << "element " << i << " of leaf";
  }
}

/// A small fixed system: 2 chains (3 + 2 fragments), 4 devices.
inline edge::EdgeSystem small_system() {
  edge::EdgeSystem sys;
  sys.devices = {
      {"d0", 50.0, 1.0},
      {"d1", 50.0, 1.0},
      {"d2", 40.0, 2.0},
      {"d3", 60.0, 0.5},
  };
  edge::ServiceChainSpec c0;
  c0.name = "c0";
  c0.arrival_rate = 0.8;
  c0.fragments = {{1.0, 0.5}, {1.0, 0.7}, {1.0, 0.3}};
  edge::ServiceChainSpec c1;
  c1.name = "c1";
  c1.arrival_rate = 0.4;
  c1.fragments = {{1.0, 0.2}, {1.0, 0.9}};
  sys.chains = {c0, c1};
  return sys;
}

/// A valid placement for small_system() where device 1 is shared by both
/// chains (exercises the multi-execution-step attention path).
inline edge::Placement small_placement() {
  return edge::Placement(std::vector<std::vector<int>>{{0, 1, 2}, {1, 3}});
}

}  // namespace chainnet::testing
