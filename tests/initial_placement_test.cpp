#include "optim/initial.h"

#include <gtest/gtest.h>

#include <set>

#include "edge/problem.h"
#include "support/rng.h"
#include "test_util.h"

namespace chainnet::optim {
namespace {

using chainnet::testing::small_system;

TEST(InitialPlacement, ValidAndDistinct) {
  const auto sys = small_system();
  const auto p = initial_placement(sys);
  EXPECT_NO_THROW(p.validate(sys));
  EXPECT_TRUE(p.complete());
  EXPECT_TRUE(p.distinct_devices_within_chains());
}

TEST(InitialPlacement, SpreadsAcrossUnusedDevicesFirst) {
  // 4 devices, 5 fragments: the first 4 assignments must hit 4 distinct
  // devices (unused ranks above used).
  const auto sys = small_system();
  const auto p = initial_placement(sys);
  std::set<int> first_four = {p.device_of(0, 0), p.device_of(0, 1),
                              p.device_of(0, 2), p.device_of(1, 0)};
  EXPECT_EQ(first_four.size(), 4u);
}

TEST(InitialPlacement, PrefersLargerRemainingMemory) {
  edge::EdgeSystem sys;
  sys.devices = {{"small", 10.0, 1.0}, {"large", 100.0, 1.0}};
  edge::ServiceChainSpec chain;
  chain.name = "c";
  chain.arrival_rate = 1.0;
  chain.fragments = {{1.0, 1.0}};
  sys.chains = {chain};
  const auto p = initial_placement(sys);
  EXPECT_EQ(p.device_of(0, 0), 1);  // larger memory wins
}

TEST(InitialPlacement, HandlesManyChainsOnFewDevices) {
  auto params = edge::PlacementProblemParams::paper(20);
  support::Rng rng(3);
  const auto sys = edge::generate_placement_problem(params, rng);
  const auto p = initial_placement(sys);
  EXPECT_NO_THROW(p.validate(sys));
  // All 20 devices should be used: there are far more fragments than
  // devices and the ranking prefers unused ones.
  EXPECT_EQ(p.used_devices().size(), 20u);
}

TEST(InitialPlacement, ThrowsWhenChainLongerThanFleet) {
  edge::EdgeSystem sys;
  sys.devices = {{"d0", 10.0, 1.0}, {"d1", 10.0, 1.0}};
  edge::ServiceChainSpec chain;
  chain.name = "long";
  chain.arrival_rate = 1.0;
  chain.fragments = {{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  sys.chains = {chain};
  EXPECT_THROW(initial_placement(sys), std::invalid_argument);
}

TEST(InitialPlacement, DeterministicOutput) {
  auto params = edge::PlacementProblemParams::paper(20);
  support::Rng rng(9);
  const auto sys = edge::generate_placement_problem(params, rng);
  EXPECT_EQ(initial_placement(sys).assignment(),
            initial_placement(sys).assignment());
}

}  // namespace
}  // namespace chainnet::optim
