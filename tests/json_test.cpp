#include "support/json.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace chainnet::support {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.5").as_number(), -3.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, Whitespace) {
  const auto j = Json::parse("  {\n\t\"a\" : [ 1 , 2 ] }\r\n");
  EXPECT_EQ(j.at("a").as_array().size(), 2u);
}

TEST(JsonParse, NestedStructure) {
  const auto j = Json::parse(
      R"({"devices":[{"name":"pi","memory":512}],"ok":true,"n":null})");
  EXPECT_EQ(j.at("devices").as_array().size(), 1u);
  EXPECT_EQ(j.at("devices").as_array()[0].at("name").as_string(), "pi");
  EXPECT_DOUBLE_EQ(j.at("devices").as_array()[0].at("memory").as_number(),
                   512.0);
  EXPECT_TRUE(j.at("ok").as_bool());
  EXPECT_TRUE(j.at("n").is_null());
}

TEST(JsonParse, StringEscapes) {
  const auto j = Json::parse(R"("a\"b\\c\/d\ne\tfA")");
  EXPECT_EQ(j.as_string(), "a\"b\\c/d\ne\tfA");
}

TEST(JsonParse, UnicodeEscapeUtf8) {
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(Json::parse("[]").as_array().empty());
  EXPECT_TRUE(Json::parse("{}").as_object().empty());
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);  // trailing garbage
  EXPECT_THROW(Json::parse("\"bad\\q\""), JsonError);
  EXPECT_THROW(Json::parse("-"), JsonError);
  EXPECT_THROW(Json::parse("\"ctrl\x01\""), JsonError);
}

// The serving layer hands this parser bytes straight off the wire, so
// hostile input must produce a JsonError — never a crash, hang, or
// unbounded recursion.
TEST(JsonParse, HostileCorpusThrowsCleanly) {
  const char* corpus[] = {
      "{",                        // truncated object
      "[",                        // truncated array
      "[[",                       // nested truncation
      "{\"a\"",                   // key without value
      "{\"a\":}",                 // missing value
      "{\"a\":1",                 // unterminated object
      "{:1}",                     // missing key
      "{1:2}",                    // non-string key
      "[1,,2]",                   // empty element
      "[1 2]",                    // missing comma
      "\"abc",                    // unterminated string
      "\"\\",                     // escape at EOF
      "\"\\u12",                  // truncated \u escape
      "\"\\u12zq\"",              // bad hex digit
      "tru",                      // truncated literal
      "nulll",                    // trailing garbage after literal
      "-",                        // sign without digits
      "+1",                       // leading plus
      ".5",                       // leading dot
      "1e999999",                 // overflowing exponent
      "\x01",                     // raw control character
      "{\"a\":1}}",               // extra closer
      "]",                        // closer without opener
      "",                         // empty input
      " \t\n",                    // whitespace only
  };
  for (const char* text : corpus) {
    EXPECT_THROW(Json::parse(text), JsonError) << "input: " << text;
  }
}

TEST(JsonParse, DeepNestingIsRejectedNotStackOverflow) {
  // A megabyte of '[' must fail fast at the depth cap, not recurse once
  // per byte.
  EXPECT_THROW(Json::parse(std::string(1u << 20, '[')), JsonError);
  const auto nested = [](int depth) {
    return std::string(static_cast<std::size_t>(depth), '[') + "1" +
           std::string(static_cast<std::size_t>(depth), ']');
  };
  EXPECT_THROW(Json::parse(nested(Json::kMaxParseDepth + 1)), JsonError);
  // The cap itself parses: limit, not off-by-one.
  const auto deep = Json::parse(nested(Json::kMaxParseDepth));
  const Json* leaf = &deep;
  while (leaf->is_array()) leaf = &leaf->as_array().front();
  EXPECT_DOUBLE_EQ(leaf->as_number(), 1.0);
  // Mixed object/array nesting hits the same cap.
  std::string mixed;
  for (int i = 0; i < Json::kMaxParseDepth + 1; ++i) mixed += "{\"k\":[";
  EXPECT_THROW(Json::parse(mixed), JsonError);
}

TEST(JsonParse, HostileLengthsDoNotCrash) {
  // Long flat documents are fine (depth cap only bounds nesting).
  std::string flat = "[0";
  for (int i = 1; i < 20000; ++i) {
    // Appended piecewise: `"," + std::to_string(...)` trips a GCC 12
    // -Wrestrict false positive (PR 105329) once inlined under -O2.
    flat += ',';
    flat += std::to_string(i % 10);
  }
  flat += "]";
  EXPECT_EQ(Json::parse(flat).as_array().size(), 20000u);
  // Truncated versions of a valid document always throw, never crash.
  const std::string doc = R"({"a":[1,2,{"b":"c\u00e9"}],"d":null})";
  for (std::size_t cut = 0; cut + 1 < doc.size(); ++cut) {
    EXPECT_THROW(Json::parse(doc.substr(0, cut)), JsonError)
        << "prefix length " << cut;
  }
}

TEST(JsonError, CarriesOffset) {
  try {
    Json::parse("[1, x]");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_GT(e.offset(), 0u);
  }
}

TEST(JsonAccess, TypeMismatchThrows) {
  const auto j = Json::parse("[1]");
  EXPECT_THROW(j.as_object(), JsonError);
  EXPECT_THROW(j.as_number(), JsonError);
  EXPECT_THROW(Json::parse("{}").at("missing"), JsonError);
}

TEST(JsonAccess, GetWithFallback) {
  const auto j = Json::parse(R"({"a": 2, "s": "x"})");
  EXPECT_DOUBLE_EQ(j.get_number("a", 0.0), 2.0);
  EXPECT_DOUBLE_EQ(j.get_number("b", 7.5), 7.5);
  EXPECT_EQ(j.get_string("s", "d"), "x");
  EXPECT_EQ(j.get_string("t", "d"), "d");
  EXPECT_TRUE(j.has("a"));
  EXPECT_FALSE(j.has("zz"));
}

TEST(JsonBuild, OperatorIndexAndPushBack) {
  Json doc;
  doc["name"] = Json("chainnet");
  doc["count"] = Json(3);
  Json list;
  list.push_back(Json(1.0));
  list.push_back(Json(true));
  doc["list"] = std::move(list);
  EXPECT_EQ(doc.at("name").as_string(), "chainnet");
  EXPECT_EQ(doc.at("list").as_array().size(), 2u);
}

TEST(JsonDump, RoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":"q\"r"})";
  const auto j = Json::parse(text);
  const auto again = Json::parse(j.dump());
  EXPECT_EQ(j, again);
}

TEST(JsonDump, PrettyPrintContainsNewlines) {
  const auto j = Json::parse(R"({"a": [1, 2]})");
  const auto pretty = j.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), j);
}

TEST(JsonDump, IntegersStayIntegral) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  const auto half = Json(0.5).dump();
  EXPECT_NE(half.find('.'), std::string::npos);
}

TEST(JsonDump, EscapesControlCharacters) {
  EXPECT_EQ(Json("a\nb").dump(), "\"a\\nb\"");
  EXPECT_EQ(Json(std::string(1, '\x02')).dump(), "\"\\u0002\"");
}

// Randomized roundtrip: build arbitrary trees, dump (compact and pretty),
// parse back, compare for equality.
namespace {

Json random_json(Rng& rng, int depth) {
  const auto pick = depth >= 3 ? rng.uniform_int(0, 3)   // leaves only
                               : rng.uniform_int(0, 5);
  switch (pick) {
    case 0:
      return Json(nullptr);
    case 1:
      return Json(rng.bernoulli(0.5));
    case 2:
      return Json(rng.uniform(-1e6, 1e6));
    case 3: {
      std::string s;
      const auto len = rng.uniform_int(0, 12);
      for (int i = 0; i < len; ++i) {
        // Mix printable ASCII with characters that need escaping.
        const char* pool = "abcXYZ 09_\"\\\n\t/";
        s += pool[rng.uniform_int(0, 15)];
      }
      return Json(std::move(s));
    }
    case 4: {
      Json::Array arr;
      const auto len = rng.uniform_int(0, 4);
      for (int i = 0; i < len; ++i) arr.push_back(random_json(rng, depth + 1));
      return Json(std::move(arr));
    }
    default: {
      Json::Object obj;
      const auto len = rng.uniform_int(0, 4);
      for (int i = 0; i < len; ++i) {
        obj.emplace("k" + std::to_string(i), random_json(rng, depth + 1));
      }
      return Json(std::move(obj));
    }
  }
}

}  // namespace

class JsonFuzzRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(JsonFuzzRoundTrip, DumpParseIsIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u);
  for (int n = 0; n < 50; ++n) {
    const Json original = random_json(rng, 0);
    EXPECT_EQ(Json::parse(original.dump()), original);
    EXPECT_EQ(Json::parse(original.dump(2)), original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzRoundTrip, ::testing::Range(1, 6));

}  // namespace
}  // namespace chainnet::support
