#include "support/json.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace chainnet::support {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.5").as_number(), -3.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, Whitespace) {
  const auto j = Json::parse("  {\n\t\"a\" : [ 1 , 2 ] }\r\n");
  EXPECT_EQ(j.at("a").as_array().size(), 2u);
}

TEST(JsonParse, NestedStructure) {
  const auto j = Json::parse(
      R"({"devices":[{"name":"pi","memory":512}],"ok":true,"n":null})");
  EXPECT_EQ(j.at("devices").as_array().size(), 1u);
  EXPECT_EQ(j.at("devices").as_array()[0].at("name").as_string(), "pi");
  EXPECT_DOUBLE_EQ(j.at("devices").as_array()[0].at("memory").as_number(),
                   512.0);
  EXPECT_TRUE(j.at("ok").as_bool());
  EXPECT_TRUE(j.at("n").is_null());
}

TEST(JsonParse, StringEscapes) {
  const auto j = Json::parse(R"("a\"b\\c\/d\ne\tfA")");
  EXPECT_EQ(j.as_string(), "a\"b\\c/d\ne\tfA");
}

TEST(JsonParse, UnicodeEscapeUtf8) {
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(Json::parse("[]").as_array().empty());
  EXPECT_TRUE(Json::parse("{}").as_object().empty());
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);  // trailing garbage
  EXPECT_THROW(Json::parse("\"bad\\q\""), JsonError);
  EXPECT_THROW(Json::parse("-"), JsonError);
  EXPECT_THROW(Json::parse("\"ctrl\x01\""), JsonError);
}

TEST(JsonError, CarriesOffset) {
  try {
    Json::parse("[1, x]");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_GT(e.offset(), 0u);
  }
}

TEST(JsonAccess, TypeMismatchThrows) {
  const auto j = Json::parse("[1]");
  EXPECT_THROW(j.as_object(), JsonError);
  EXPECT_THROW(j.as_number(), JsonError);
  EXPECT_THROW(Json::parse("{}").at("missing"), JsonError);
}

TEST(JsonAccess, GetWithFallback) {
  const auto j = Json::parse(R"({"a": 2, "s": "x"})");
  EXPECT_DOUBLE_EQ(j.get_number("a", 0.0), 2.0);
  EXPECT_DOUBLE_EQ(j.get_number("b", 7.5), 7.5);
  EXPECT_EQ(j.get_string("s", "d"), "x");
  EXPECT_EQ(j.get_string("t", "d"), "d");
  EXPECT_TRUE(j.has("a"));
  EXPECT_FALSE(j.has("zz"));
}

TEST(JsonBuild, OperatorIndexAndPushBack) {
  Json doc;
  doc["name"] = Json("chainnet");
  doc["count"] = Json(3);
  Json list;
  list.push_back(Json(1.0));
  list.push_back(Json(true));
  doc["list"] = std::move(list);
  EXPECT_EQ(doc.at("name").as_string(), "chainnet");
  EXPECT_EQ(doc.at("list").as_array().size(), 2u);
}

TEST(JsonDump, RoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":"q\"r"})";
  const auto j = Json::parse(text);
  const auto again = Json::parse(j.dump());
  EXPECT_EQ(j, again);
}

TEST(JsonDump, PrettyPrintContainsNewlines) {
  const auto j = Json::parse(R"({"a": [1, 2]})");
  const auto pretty = j.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), j);
}

TEST(JsonDump, IntegersStayIntegral) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  const auto half = Json(0.5).dump();
  EXPECT_NE(half.find('.'), std::string::npos);
}

TEST(JsonDump, EscapesControlCharacters) {
  EXPECT_EQ(Json("a\nb").dump(), "\"a\\nb\"");
  EXPECT_EQ(Json(std::string(1, '\x02')).dump(), "\"\\u0002\"");
}

// Randomized roundtrip: build arbitrary trees, dump (compact and pretty),
// parse back, compare for equality.
namespace {

Json random_json(Rng& rng, int depth) {
  const auto pick = depth >= 3 ? rng.uniform_int(0, 3)   // leaves only
                               : rng.uniform_int(0, 5);
  switch (pick) {
    case 0:
      return Json(nullptr);
    case 1:
      return Json(rng.bernoulli(0.5));
    case 2:
      return Json(rng.uniform(-1e6, 1e6));
    case 3: {
      std::string s;
      const auto len = rng.uniform_int(0, 12);
      for (int i = 0; i < len; ++i) {
        // Mix printable ASCII with characters that need escaping.
        const char* pool = "abcXYZ 09_\"\\\n\t/";
        s += pool[rng.uniform_int(0, 15)];
      }
      return Json(std::move(s));
    }
    case 4: {
      Json::Array arr;
      const auto len = rng.uniform_int(0, 4);
      for (int i = 0; i < len; ++i) arr.push_back(random_json(rng, depth + 1));
      return Json(std::move(arr));
    }
    default: {
      Json::Object obj;
      const auto len = rng.uniform_int(0, 4);
      for (int i = 0; i < len; ++i) {
        obj.emplace("k" + std::to_string(i), random_json(rng, depth + 1));
      }
      return Json(std::move(obj));
    }
  }
}

}  // namespace

class JsonFuzzRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(JsonFuzzRoundTrip, DumpParseIsIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u);
  for (int n = 0; n < 50; ++n) {
    const Json original = random_json(rng, 0);
    EXPECT_EQ(Json::parse(original.dump()), original);
    EXPECT_EQ(Json::parse(original.dump(2)), original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzRoundTrip, ::testing::Range(1, 6));

}  // namespace
}  // namespace chainnet::support
