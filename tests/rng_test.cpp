#include "support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace chainnet::support {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 50; ++i) seen.insert(r());
  EXPECT_GT(seen.size(), 45u);
}

TEST(Rng, Uniform01InRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanAndVariance) {
  Rng r(11);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform01();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-2.5, 7.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, UniformIntCoversAllValuesInclusive) {
  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, UniformIntSingleValue) {
  Rng r(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntApproximatelyUniform) {
  Rng r(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<std::size_t>(r.uniform_int(0, 9))]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialPositive) {
  Rng r(19);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng r(23);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChildStreamsAreIndependent) {
  Rng parent(31);
  Rng a = parent.child(1);
  Rng b = parent.child(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(31), b(31);
  (void)a.split(7);
  (void)a.split(8);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitIsDeterministicPerStreamId) {
  const Rng parent(13);
  Rng x = parent.split(4);
  Rng y = parent.split(4);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(x(), y());
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  const Rng parent(13);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  Rng c = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    const auto va = a(), vb = b(), vc = c();
    if (va == vb || vb == vc || va == vc) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitDiffersFromParentOutput) {
  Rng parent(97);
  Rng child = parent.split(0);
  Rng fresh(97);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child() == fresh()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitManyStreamsDistinctFirstDraws) {
  // The search subsystem hands chain k the stream split(k); a population of
  // 64 chains must see 64 genuinely distinct streams from the first draw.
  const Rng parent(2027);
  std::set<std::uint64_t> first_draws;
  for (std::uint64_t k = 0; k < 64; ++k) {
    Rng stream = parent.split(k);
    first_draws.insert(stream());
  }
  EXPECT_EQ(first_draws.size(), 64u);
}

TEST(Rng, SplitManyStreamsPairwiseDecorrelated) {
  // Pairwise Pearson correlation of uniform01 sequences across 32 sibling
  // streams. For n = 1024 independent samples |r| concentrates around
  // 1/sqrt(n) ~ 0.03; 0.15 leaves wide slack while still catching any
  // structural coupling between streams.
  constexpr int kStreams = 32;
  constexpr int kSamples = 1024;
  const Rng parent(4099);
  std::vector<std::vector<double>> seq(kStreams);
  for (int k = 0; k < kStreams; ++k) {
    Rng stream = parent.split(static_cast<std::uint64_t>(k));
    seq[static_cast<std::size_t>(k)].reserve(kSamples);
    for (int i = 0; i < kSamples; ++i) {
      seq[static_cast<std::size_t>(k)].push_back(stream.uniform01());
    }
  }
  for (int a = 0; a < kStreams; ++a) {
    for (int b = a + 1; b < kStreams; ++b) {
      double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
      for (int i = 0; i < kSamples; ++i) {
        const double x = seq[static_cast<std::size_t>(a)]
                            [static_cast<std::size_t>(i)];
        const double y = seq[static_cast<std::size_t>(b)]
                            [static_cast<std::size_t>(i)];
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
      }
      const double n = kSamples;
      const double cov = sxy / n - (sx / n) * (sy / n);
      const double vx = sxx / n - (sx / n) * (sx / n);
      const double vy = syy / n - (sy / n) * (sy / n);
      const double r = cov / std::sqrt(vx * vy);
      EXPECT_LT(std::abs(r), 0.15)
          << "streams " << a << " and " << b << " are correlated";
    }
  }
}

TEST(Rng, SplitStableAcrossCreationOrder) {
  // split(k) depends only on (parent state, k) — worker construction order
  // must never change a stream, or thread-count determinism breaks.
  const Rng parent(777);
  std::vector<std::uint64_t> forward(48), reverse(48);
  for (std::uint64_t k = 0; k < 48; ++k) {
    Rng stream = parent.split(k);
    forward[static_cast<std::size_t>(k)] = stream();
  }
  for (std::uint64_t k = 48; k-- > 0;) {
    Rng stream = parent.split(k);
    reverse[static_cast<std::size_t>(k)] = stream();
  }
  EXPECT_EQ(forward, reverse);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace chainnet::support
