#include "support/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace chainnet::support {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"model", "mape"});
  t.add_row({"ChainNet", "0.037"});
  t.add_row({"GAT", "0.120"});
  std::ostringstream os;
  t.print(os, "Throughput");
  const std::string out = os.str();
  EXPECT_NE(out.find("== Throughput =="), std::string::npos);
  EXPECT_NE(out.find("model"), std::string::npos);
  EXPECT_NE(out.find("ChainNet"), std::string::npos);
  EXPECT_NE(out.find("GAT"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(0.123456, 3), "0.123");
  EXPECT_EQ(Table::num(2.0, 1), "2.0");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const auto path =
      (std::filesystem::temp_directory_path() / "chainnet_csv_test.csv")
          .string();
  {
    CsvWriter csv(path, {"x", "y"});
    csv.row(std::vector<double>{1.0, 2.5});
    csv.row(std::vector<std::string>{"3", "4.5"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4.5");
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/foo.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace chainnet::support
