#include "edge/problem.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace chainnet::edge {
namespace {

using support::Rng;

TEST(Type1Params, MatchTableIII) {
  const auto p = NetworkGenParams::type1();
  EXPECT_EQ(p.max_devices, 10);
  EXPECT_EQ(p.max_chains, 3);
  EXPECT_EQ(p.max_fragments, 6);
  EXPECT_DOUBLE_EQ(p.memory_capacity, 50.0);
}

TEST(Type2Params, MatchTableIII) {
  const auto p = NetworkGenParams::type2();
  EXPECT_EQ(p.max_devices, 80);
  EXPECT_EQ(p.max_chains, 12);
  EXPECT_EQ(p.max_fragments, 12);
  EXPECT_DOUBLE_EQ(p.memory_capacity, 100.0);
}

TEST(GenerateSample, RespectsTypeIBounds) {
  const auto params = NetworkGenParams::type1();
  Rng rng(5);
  for (int n = 0; n < 200; ++n) {
    const auto s = generate_network_sample(params, rng);
    EXPECT_NO_THROW(s.system.validate());
    EXPECT_NO_THROW(s.placement.validate(s.system));
    EXPECT_LE(s.system.num_chains(), 3);
    EXPECT_GE(s.system.num_chains(), 1);
    EXPECT_LE(s.system.num_devices(), 10);
    for (const auto& chain : s.system.chains) {
      EXPECT_GE(chain.length(), 2);
      EXPECT_LE(chain.length(), 6);
      // Interarrival mean within U(0.1, 10).
      const double mean_ia = 1.0 / chain.arrival_rate;
      EXPECT_GE(mean_ia, 0.1);
      EXPECT_LE(mean_ia, 10.0);
      for (const auto& f : chain.fragments) {
        EXPECT_DOUBLE_EQ(f.memory_demand, 1.0);  // fixed memory unit
        EXPECT_GT(f.compute_demand, 0.0);
        EXPECT_LE(f.compute_demand, 2.0);
      }
    }
    for (const auto& d : s.system.devices) {
      EXPECT_DOUBLE_EQ(d.memory_capacity, 50.0);
      EXPECT_DOUBLE_EQ(d.service_rate, 1.0);
    }
  }
}

TEST(GenerateSample, TypeIIBoundsAndFloors) {
  const auto params = NetworkGenParams::type2();
  Rng rng(7);
  for (int n = 0; n < 100; ++n) {
    const auto s = generate_network_sample(params, rng);
    EXPECT_LE(s.system.num_chains(), 12);
    EXPECT_LE(s.system.num_devices(), 80);
    for (const auto& chain : s.system.chains) {
      EXPECT_GE(1.0 / chain.arrival_rate, 1.0);  // table footnote floor
      for (const auto& f : chain.fragments) {
        EXPECT_GE(f.compute_demand, 0.05);
      }
    }
  }
}

TEST(GenerateSample, FragmentsLandOnDistinctDevices) {
  const auto params = NetworkGenParams::type1();
  Rng rng(11);
  for (int n = 0; n < 100; ++n) {
    const auto s = generate_network_sample(params, rng);
    EXPECT_TRUE(s.placement.distinct_devices_within_chains());
  }
}

TEST(GenerateSample, DeterministicGivenSeed) {
  const auto params = NetworkGenParams::type1();
  Rng a(99), b(99);
  const auto s1 = generate_network_sample(params, a);
  const auto s2 = generate_network_sample(params, b);
  EXPECT_EQ(s1.placement.assignment(), s2.placement.assignment());
  EXPECT_DOUBLE_EQ(s1.system.chains[0].arrival_rate,
                   s2.system.chains[0].arrival_rate);
}

TEST(GenerateSample, VariesAcrossDraws) {
  const auto params = NetworkGenParams::type1();
  Rng rng(13);
  std::set<int> chain_counts;
  for (int n = 0; n < 50; ++n) {
    chain_counts.insert(generate_network_sample(params, rng).system.num_chains());
  }
  EXPECT_GT(chain_counts.size(), 1u);
}

TEST(GenerateSample, MissingDistributionsThrow) {
  NetworkGenParams p = NetworkGenParams::type1();
  p.interarrival_mean = nullptr;
  Rng rng(1);
  EXPECT_THROW(generate_network_sample(p, rng), std::invalid_argument);
}

TEST(PlacementProblem, MatchesTableVII) {
  const auto params = PlacementProblemParams::paper(40);
  Rng rng(17);
  const auto sys = generate_placement_problem(params, rng);
  EXPECT_EQ(sys.num_devices(), 40);
  EXPECT_EQ(sys.num_chains(), 12);
  for (const auto& d : sys.devices) {
    EXPECT_GE(d.service_rate, 0.5);
    EXPECT_LE(d.service_rate, 1.0);
    EXPECT_DOUBLE_EQ(d.memory_capacity, 100.0);
  }
  for (const auto& chain : sys.chains) {
    EXPECT_LE(chain.length(), 12);
    EXPECT_GE(1.0 / chain.arrival_rate, 0.01);
    for (const auto& f : chain.fragments) {
      EXPECT_GE(f.compute_demand, 0.01);
      EXPECT_LE(f.compute_demand, 0.1);
    }
  }
}

TEST(PlacementProblem, RejectsTooFewDevices) {
  const auto params = PlacementProblemParams::paper(10);  // max frags = 12
  Rng rng(1);
  EXPECT_THROW(generate_placement_problem(params, rng),
               std::invalid_argument);
}

TEST(RandomPlacement, ValidAndVaried) {
  const auto params = PlacementProblemParams::paper(20);
  Rng rng(33);
  const auto sys = generate_placement_problem(params, rng);
  std::set<std::vector<std::vector<int>>> seen;
  for (int n = 0; n < 20; ++n) {
    const auto p = random_placement(sys, rng);
    EXPECT_NO_THROW(p.validate(sys));
    EXPECT_TRUE(p.distinct_devices_within_chains());
    seen.insert(p.assignment());
  }
  EXPECT_GT(seen.size(), 15u);  // placements actually vary
}

TEST(RandomPlacement, ThrowsWhenChainTooLong) {
  EdgeSystem sys;
  sys.devices = {{"d0", 10.0, 1.0}};
  ServiceChainSpec chain;
  chain.name = "long";
  chain.arrival_rate = 1.0;
  chain.fragments = {{1.0, 1.0}, {1.0, 1.0}};
  sys.chains = {chain};
  Rng rng(1);
  EXPECT_THROW(random_placement(sys, rng), std::invalid_argument);
}

TEST(CaseStudy, MatchesSectionVIIID) {
  const auto sys = case_study_system();
  EXPECT_NO_THROW(sys.validate());
  EXPECT_EQ(sys.num_devices(), 5);
  EXPECT_EQ(sys.num_chains(), 8);
  EXPECT_EQ(sys.total_fragments(), 28);
  // 4 chains of 4 fragments and 4 chains of 3.
  int fours = 0, threes = 0;
  for (const auto& chain : sys.chains) {
    if (chain.length() == 4) ++fours;
    if (chain.length() == 3) ++threes;
    // Interarrival means are 0.7 s (4-fragment) / 0.6 s (3-fragment).
    const double mean_ia = 1.0 / chain.arrival_rate;
    EXPECT_NEAR(mean_ia, chain.length() == 4 ? 0.7 : 0.6, 1e-9);
    for (const auto& f : chain.fragments) {
      EXPECT_GE(f.memory_demand, 4.0);       // >= 4 KB
      EXPECT_LE(f.memory_demand, 51879.0);   // <= 51879 KB
    }
  }
  EXPECT_EQ(fours, 4);
  EXPECT_EQ(threes, 4);
  // Device fleet memory sizes in KB.
  std::multiset<double> capacities;
  for (const auto& d : sys.devices) capacities.insert(d.memory_capacity);
  EXPECT_EQ(capacities.count(128.0 * 1024.0), 2u);
  EXPECT_EQ(capacities.count(256.0 * 1024.0), 2u);
  EXPECT_EQ(capacities.count(512.0 * 1024.0), 1u);
}

TEST(CaseStudy, IsHeavilyLoaded) {
  // The offered computational load should exceed what the two slow Pis can
  // absorb, making placement decisions matter (the paper's premise).
  const auto sys = case_study_system();
  double offered = 0.0;  // GFLOP/s demanded
  for (const auto& chain : sys.chains) {
    double work = 0.0;
    for (const auto& f : chain.fragments) work += f.compute_demand;
    offered += chain.arrival_rate * work;
  }
  double capacity = 0.0;
  for (const auto& d : sys.devices) capacity += d.service_rate;
  EXPECT_GT(offered, 0.5 * capacity);
  EXPECT_LT(offered, capacity);  // a good placement can be mostly lossless
}

}  // namespace
}  // namespace chainnet::edge
