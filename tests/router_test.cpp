// In-process router tests: affinity (same system -> same backend), failover
// with typed upstream_failed, merged stats, and the Prometheus exposition.
// The fork/exec kill-and-reload scenarios live in router_integration_test.
#include "serve/router.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "edge/problem.h"
#include "optim/evaluator.h"
#include "runtime/eval_service.h"
#include "runtime/thread_pool.h"
#include "serve/client.h"
#include "serve/hash_ring.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "support/json.h"
#include "support/rng.h"

namespace chainnet::serve {
namespace {

constexpr int kBackends = 3;
constexpr int kSystems = 8;

std::string system_name(int s) { return "sys-" + std::to_string(s); }

/// Router + backends fixture: every backend knows every system, so any
/// request is servable anywhere and routing decisions are observable purely
/// through per-backend counters.
struct Fixture {
  edge::EdgeSystem system;
  std::vector<edge::Placement> placements;
  runtime::ThreadPool pool{1};
  std::unique_ptr<runtime::EvalService> service;
  std::vector<std::unique_ptr<Server>> backends;
  std::unique_ptr<Router> router;

  Fixture()
      : system([] {
          support::Rng rng(5);
          return edge::generate_placement_problem(
              edge::PlacementProblemParams::paper(13), rng);
        }()) {
    support::Rng rng(23);
    for (int i = 0; i < 8; ++i) {
      placements.push_back(edge::random_placement(system, rng));
    }
    runtime::EvalService::EvaluatorFactory factory =
        [](support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
      return std::make_unique<optim::ApproximationEvaluator>();
    };
    service = std::make_unique<runtime::EvalService>(pool, factory, 99);

    RouterConfig config;
    for (int b = 0; b < kBackends; ++b) {
      auto server = std::make_unique<Server>(*service, ServerConfig{});
      for (int s = 0; s < kSystems; ++s) {
        server->add_system(system_name(s), system);
      }
      server->start();
      config.backends.push_back(
          BackendAddress{"127.0.0.1", server->port()});
      backends.push_back(std::move(server));
    }
    config.health_interval_ms = 50.0;
    router = std::make_unique<Router>(std::move(config));
    router->start();
  }

  ~Fixture() {
    router->stop();
    for (auto& backend : backends) backend->stop();
  }

  std::uint64_t forwarded(int backend) const {
    const auto stats = router->stats_json();
    return static_cast<std::uint64_t>(stats.at("backends")
                                          .as_array()[static_cast<std::size_t>(
                                              backend)]
                                          .at("forwarded")
                                          .as_number());
  }
};

TEST(Router, SystemAffinityPinsEachSystemToItsRingBackend) {
  Fixture fx;
  Client client("127.0.0.1", fx.router->port());
  const HashRing ring(kBackends);  // same deterministic ring as the router

  std::vector<std::uint64_t> expected(kBackends, 0);
  for (int s = 0; s < kSystems; ++s) {
    const auto home = ring.pick(HashRing::hash_bytes(system_name(s)));
    for (int i = 0; i < 3; ++i) {
      client.evaluate_one(fx.placements[static_cast<std::size_t>(i)],
                          system_name(s));
      ++expected[home];
    }
  }
  for (int b = 0; b < kBackends; ++b) {
    EXPECT_EQ(fx.forwarded(b), expected[static_cast<std::size_t>(b)])
        << "backend " << b;
  }
  EXPECT_EQ(fx.router->metrics().evals_routed.value(),
            static_cast<std::uint64_t>(kSystems) * 3);
}

TEST(Router, FailoverReroutesWhenTheHomeBackendDies) {
  Fixture fx;
  Client client("127.0.0.1", fx.router->port());
  const HashRing ring(kBackends);
  const auto home =
      static_cast<int>(ring.pick(HashRing::hash_bytes(system_name(0))));
  client.evaluate_one(fx.placements[0], system_name(0));
  ASSERT_EQ(fx.forwarded(home), 1u);

  fx.backends[static_cast<std::size_t>(home)]->stop();
  // The next request either fails over transparently (retry-once) or, if
  // every attempt raced the shutdown, surfaces the typed upstream error —
  // never a transport/protocol error.
  double value = 0.0;
  try {
    value = client.evaluate_one(fx.placements[0], system_name(0));
    EXPECT_GT(value, 0.0);
    EXPECT_EQ(fx.forwarded(home), 1u) << "dead backend must not be re-picked";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUpstreamFailed);
  }
  // Once marked unhealthy, subsequent requests for the same system keep
  // working against a failover backend.
  const double again = client.evaluate_one(fx.placements[0], system_name(0));
  EXPECT_GT(again, 0.0);
  EXPECT_GE(fx.router->metrics().ejections.value(), 1u);
}

TEST(Router, AllBackendsDownYieldsTypedUpstreamFailed) {
  Fixture fx;
  for (auto& backend : fx.backends) backend->stop();
  Client client("127.0.0.1", fx.router->port());
  try {
    client.evaluate_one(fx.placements[0], system_name(0));
    FAIL() << "expected upstream_failed";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUpstreamFailed);
  }
  EXPECT_GE(fx.router->metrics().upstream_failures.value(), 1u);
}

TEST(Router, StatsMergesRouterAndBackendCounters) {
  Fixture fx;
  Client client("127.0.0.1", fx.router->port());
  client.evaluate_one(fx.placements[0], system_name(0));
  const auto stats = client.stats();

  EXPECT_EQ(stats.at("evals_routed").as_number(), 1.0);
  EXPECT_TRUE(stats.has("route_latency"));
  EXPECT_GE(stats.at("route_latency").at("count").as_number(), 1.0);
  const auto& backends = stats.at("backends").as_array();
  ASSERT_EQ(backends.size(), static_cast<std::size_t>(kBackends));
  for (const auto& backend : backends) {
    EXPECT_TRUE(backend.has("address"));
    EXPECT_TRUE(backend.has("healthy"));
    EXPECT_TRUE(backend.has("forwarded"));
    // Live backend snapshot: the server's own counters are reachable
    // through the router's merged view.
    ASSERT_TRUE(backend.has("stats"));
    EXPECT_TRUE(backend.at("stats").has("requests"));
  }
}

TEST(Router, PrometheusEndpointServesParseableText) {
  Fixture fx;
  Client client("127.0.0.1", fx.router->port());
  client.evaluate_one(fx.placements[0], system_name(0));

  // Plain HTTP GET against the metrics port.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(fx.router->metrics_port()));
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) break;
    response.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);

  ASSERT_TRUE(response.rfind("HTTP/1.0 200 OK\r\n", 0) == 0) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const auto body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);

  // Every non-comment, non-blank line must be "name{labels} value" /
  // "name value" with a numeric value — the whole exposition contract.
  std::size_t samples = 0;
  std::size_t start = 0;
  while (start < body.size()) {
    auto end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    EXPECT_NE(name.find("chainnet_"), std::string::npos) << line;
    char* parse_end = nullptr;
    const std::string value = line.substr(space + 1);
    std::strtod(value.c_str(), &parse_end);
    EXPECT_EQ(*parse_end, '\0') << "non-numeric sample value: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 10u);
  EXPECT_NE(body.find("chainnet_router_requests_total"), std::string::npos);
  EXPECT_NE(body.find("chainnet_router_backend_up{"), std::string::npos);
  EXPECT_GE(fx.router->metrics().metrics_scrapes.value(), 1u);
}

TEST(Router, PlacementAffinitySpreadsOneSystemButCoLocatesPairs) {
  // Separate fixture-less setup: a placement-affinity router over the same
  // backends, asserting (a) repeated (system, placement) pairs always land
  // on one backend, and (b) distinct placements of one system reach more
  // than one backend.
  Fixture fx;
  RouterConfig config;
  for (const auto& backend : fx.backends) {
    config.backends.push_back(BackendAddress{"127.0.0.1", backend->port()});
  }
  config.affinity = RouteAffinity::kPlacement;
  Router router(std::move(config));
  router.start();
  {
    Client client("127.0.0.1", router.port());
    std::vector<std::uint64_t> before(kBackends, 0);
    auto forwarded_by = [&router] {
      const auto stats = router.stats_json();  // keep the snapshot alive
      std::vector<std::uint64_t> counts;
      for (const auto& backend : stats.at("backends").as_array()) {
        counts.push_back(static_cast<std::uint64_t>(
            backend.at("forwarded").as_number()));
      }
      return counts;
    };
    // (a) the same pair, many times: exactly one backend moves.
    for (int i = 0; i < 5; ++i) {
      client.evaluate_one(fx.placements[0], system_name(0));
    }
    auto counts = forwarded_by();
    EXPECT_EQ(std::count_if(counts.begin(), counts.end(),
                            [](std::uint64_t c) { return c > 0; }),
              1);
    // (b) many distinct placements of the one system: the spread reaches
    // at least a second backend.
    for (int r = 0; r < 4; ++r) {
      for (const auto& placement : fx.placements) {
        client.evaluate_one(placement, system_name(0));
      }
    }
    counts = forwarded_by();
    EXPECT_GE(std::count_if(counts.begin(), counts.end(),
                            [](std::uint64_t c) { return c > 0; }),
              2);
  }
  router.stop();
}

}  // namespace
}  // namespace chainnet::serve
