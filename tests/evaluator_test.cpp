#include "optim/evaluator.h"

#include <gtest/gtest.h>

#include "core/chainnet.h"
#include "edge/qn_mapping.h"
#include "optim/initial.h"
#include "queueing/approximation.h"
#include "test_util.h"

namespace chainnet::optim {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;

TEST(SimulationEvaluator, CountsEvaluationsAndIsDeterministic) {
  queueing::SimConfig cfg;
  cfg.horizon = 2000.0;
  cfg.seed = 5;
  SimulationEvaluator eval(cfg);
  const auto sys = small_system();
  EXPECT_EQ(eval.evaluations(), 0u);
  const double a = eval.total_throughput(sys, small_placement());
  const double b = eval.total_throughput(sys, small_placement());
  EXPECT_EQ(eval.evaluations(), 2u);
  EXPECT_DOUBLE_EQ(a, b);  // fixed seed => same estimate
  EXPECT_GT(a, 0.0);
  EXPECT_LE(a, sys.total_arrival_rate() * 1.1);
}

TEST(SimulationEvaluator, DeterministicServiceOption) {
  // Under overload with tiny buffers, service-time variability changes the
  // loss rate: deterministic service (M/D/1/K-like) loses fewer jobs than
  // exponential, so the evaluated objective must be higher.
  auto sys = small_system();
  for (auto& d : sys.devices) d.memory_capacity = 2.0;
  for (auto& c : sys.chains) c.arrival_rate *= 4.0;
  queueing::SimConfig cfg;
  cfg.horizon = 20000.0;
  SimulationEvaluator exp_eval(cfg, edge::ServiceModel::kExponential);
  SimulationEvaluator det_eval(cfg, edge::ServiceModel::kDeterministic);
  const double a = exp_eval.total_throughput(sys, small_placement());
  const double b = det_eval.total_throughput(sys, small_placement());
  EXPECT_GT(b, a);
}

TEST(SurrogateEvaluator, BoundedByOfferedLoad) {
  support::Rng rng(3);
  core::ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  core::ChainNet model(cfg, rng);
  SurrogateEvaluator eval{core::Surrogate(model)};
  const auto sys = small_system();
  const double x = eval.total_throughput(sys, small_placement());
  EXPECT_GE(x, 0.0);
  EXPECT_LE(x, sys.total_arrival_rate() + 1e-9);
  EXPECT_EQ(eval.evaluations(), 1u);
}

TEST(ApproximationEvaluator, MatchesDirectApproximation) {
  ApproximationEvaluator eval;
  const auto sys = small_system();
  const double via_eval = eval.total_throughput(sys, small_placement());
  const auto qn = edge::build_qn(sys, small_placement());
  const double direct = queueing::approximate(qn).total_throughput();
  EXPECT_DOUBLE_EQ(via_eval, direct);
}

TEST(ApproximationEvaluator, TracksSimulationOnLightLoad) {
  const auto sys = small_system();
  const auto placement = initial_placement(sys);
  ApproximationEvaluator approx;
  queueing::SimConfig cfg;
  cfg.horizon = 50000.0;
  SimulationEvaluator sim(cfg);
  const double a = approx.total_throughput(sys, placement);
  const double s = sim.total_throughput(sys, placement);
  EXPECT_NEAR(a, s, 0.1 * s);
}

}  // namespace
}  // namespace chainnet::optim
