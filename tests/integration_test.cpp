// End-to-end pipeline checks: generate -> simulate -> train -> predict ->
// optimize, on deliberately tiny scales. These mirror the paper's workflow
// (Fig. 3) rather than any single module.
#include <gtest/gtest.h>

#include "core/chainnet.h"
#include "core/surrogate.h"
#include "gnn/dataset.h"
#include "gnn/metrics.h"
#include "gnn/trainer.h"
#include "optim/annealing.h"
#include "optim/experiment.h"
#include "optim/initial.h"
#include "support/rng.h"

namespace chainnet {
namespace {

using support::Rng;

gnn::Dataset make_dataset(int count, std::uint64_t seed) {
  gnn::LabelingConfig lc;
  lc.arrivals_per_chain = 400.0;
  auto params = edge::NetworkGenParams::type1();
  params.max_devices = 6;
  params.max_fragments = 4;
  return gnn::generate_dataset(params, count, lc, seed);
}

TEST(Integration, TrainedChainNetBeatsUntrainedOnHeldOut) {
  const auto train_ds = make_dataset(40, 1);
  const auto test_ds = make_dataset(10, 2);

  Rng rng(3);
  core::ChainNetConfig cfg;
  cfg.hidden = 12;
  cfg.iterations = 3;
  core::ChainNet model(cfg, rng);

  const auto before = gnn::summarize(
      gnn::throughput_apes(gnn::evaluate(model, test_ds)));
  gnn::TrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 8;
  tc.learning_rate = 3e-3;
  gnn::train(model, train_ds, nullptr, tc);
  const auto after = gnn::summarize(
      gnn::throughput_apes(gnn::evaluate(model, test_ds)));

  EXPECT_LT(after.mape, before.mape);
  EXPECT_LT(after.mape, 0.35);  // far better than chance on held-out data
}

TEST(Integration, SurrogateSearchImprovesSimulatedLoss) {
  // Build a small overloaded problem where placement matters: two fast and
  // two very slow devices.
  edge::EdgeSystem sys;
  sys.devices = {{"fast0", 50.0, 2.0},
                 {"fast1", 50.0, 2.0},
                 {"slow0", 50.0, 0.2},
                 {"slow1", 50.0, 0.2}};
  for (int i = 0; i < 2; ++i) {
    edge::ServiceChainSpec chain;
    chain.name = "c" + std::to_string(i);
    chain.arrival_rate = 1.0;
    chain.fragments = {{1.0, 0.8}, {1.0, 0.6}};
    sys.chains.push_back(chain);
  }

  // Ground-truth (simulation) evaluator driving the search directly — this
  // is the paper's baseline method; it must improve the initial placement.
  queueing::SimConfig sim;
  sim.horizon = 3000.0;
  sim.seed = 17;
  optim::SimulationEvaluator eval(sim);
  const auto initial = optim::initial_placement(sys);
  const double x0 = optim::simulated_total_throughput(sys, initial, sim);

  optim::SaConfig sa;
  sa.max_steps = 60;
  sa.seed = 7;
  const auto result = optim::anneal_trials(sys, initial, eval, sa, 3);
  const double x1 =
      optim::simulated_total_throughput(sys, result.best, sim);

  EXPECT_GT(x1, x0);
  const double eta = optim::relative_loss_reduction(sys, x0, x1);
  EXPECT_GT(eta, 0.2);
  EXPECT_LE(optim::loss_probability(sys, x1),
            optim::loss_probability(sys, x0));
}

TEST(Integration, SurrogateEvaluatorDrivesSearchEndToEnd) {
  // Train a small ChainNet on tiny data, then let it drive SA. The point is
  // wiring (placement -> graph -> prediction -> acceptance), not accuracy.
  const auto train_ds = make_dataset(24, 4);
  Rng rng(5);
  core::ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  core::ChainNet model(cfg, rng);
  gnn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 8;
  gnn::train(model, train_ds, nullptr, tc);

  const auto& sys = train_ds.samples[0].system;
  const auto initial = optim::initial_placement(sys);
  optim::SurrogateEvaluator eval{core::Surrogate(model)};
  optim::SaConfig sa;
  sa.max_steps = 30;
  sa.seed = 13;
  const auto result = optim::anneal(sys, initial, eval, sa);
  EXPECT_NO_THROW(result.best.validate(sys));
  EXPECT_GE(result.best_objective, 0.0);
  // Surrogate throughput can never exceed the offered load (ratio decode).
  EXPECT_LE(result.best_objective, sys.total_arrival_rate() + 1e-9);
  EXPECT_GT(eval.evaluations(), 0u);
}

TEST(Integration, ChainNetGeneralizesAcrossSizesStructurally) {
  // Train on up-to-4-fragment graphs, predict on a 6-fragment chain: the
  // forward pass must produce sane bounded outputs (the design goal of
  // §VI-B). Accuracy on large graphs is exercised by the benches.
  const auto train_ds = make_dataset(16, 6);
  Rng rng(7);
  core::ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  core::ChainNet model(cfg, rng);
  gnn::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 8;
  gnn::train(model, train_ds, nullptr, tc);

  auto params = edge::NetworkGenParams::type1();
  params.min_fragments = 6;
  params.max_fragments = 6;
  Rng gen_rng(8);
  const auto big = edge::generate_network_sample(params, gen_rng);
  const auto g =
      edge::build_graph(big.system, big.placement, model.feature_mode());
  const auto preds = gnn::predict_physical(model, g);
  for (std::size_t i = 0; i < preds.size(); ++i) {
    EXPECT_GE(preds[i].throughput, 0.0);
    EXPECT_LE(preds[i].throughput,
              big.system.chains[i].arrival_rate + 1e-9);
    EXPECT_GE(preds[i].latency, g.total_processing[i] - 1e-9);
  }
}

}  // namespace
}  // namespace chainnet
