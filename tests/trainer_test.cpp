#include "gnn/trainer.h"

#include <gtest/gtest.h>

#include "core/chainnet.h"
#include "gnn/baselines.h"
#include "test_util.h"

namespace chainnet::gnn {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;
using support::Rng;

Dataset tiny_dataset(int count, std::uint64_t seed) {
  LabelingConfig cfg;
  cfg.arrivals_per_chain = 300.0;
  auto params = edge::NetworkGenParams::type1();
  params.max_devices = 6;
  params.max_fragments = 4;
  return generate_dataset(params, count, cfg, seed);
}

TrainConfig quick_config(int epochs) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 8;
  cfg.learning_rate = 3e-3;
  return cfg;
}

TEST(Trainer, LossDecreasesForChainNet) {
  const auto ds = tiny_dataset(24, 31);
  Rng rng(1);
  core::ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  core::ChainNet model(cfg, rng);
  const double before = evaluate_loss(model, ds);
  const auto report = train(model, ds, nullptr, quick_config(12));
  ASSERT_EQ(report.train_loss.size(), 12u);
  EXPECT_LT(report.train_loss.back(), before);
  EXPECT_LT(report.train_loss.back(), report.train_loss.front());
  EXPECT_GT(report.seconds, 0.0);
}

TEST(Trainer, ValidationCurveRecorded) {
  const auto train_ds = tiny_dataset(12, 32);
  const auto val_ds = tiny_dataset(6, 33);
  Rng rng(2);
  core::ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  core::ChainNet model(cfg, rng);
  const auto report = train(model, train_ds, &val_ds, quick_config(4));
  ASSERT_EQ(report.val_loss.size(), 4u);
  for (double v : report.val_loss) EXPECT_TRUE(std::isfinite(v));
}

TEST(Trainer, EpochCallbackFires) {
  const auto ds = tiny_dataset(8, 34);
  Rng rng(3);
  core::ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  core::ChainNet model(cfg, rng);
  int calls = 0;
  TrainConfig tc = quick_config(3);
  tc.on_epoch = [&](int epoch, double tl, double) {
    EXPECT_EQ(epoch, calls);
    EXPECT_TRUE(std::isfinite(tl));
    ++calls;
  };
  train(model, ds, nullptr, tc);
  EXPECT_EQ(calls, 3);
}

TEST(Trainer, SingleHeadBaselineTrains) {
  const auto ds = tiny_dataset(16, 35);
  Rng rng(4);
  BaselineConfig cfg;
  cfg.hidden = 8;
  cfg.layers = 2;
  cfg.head = PredictionHead::kThroughput;
  Gat model(cfg, rng);
  const double before = evaluate_loss(model, ds);
  train(model, ds, nullptr, quick_config(8));
  EXPECT_LT(evaluate_loss(model, ds), before);
}

TEST(Trainer, OverfitsSingleSample) {
  // One sample, many epochs: ChainNet should drive the loss near zero —
  // a classic sanity check that gradients and targets are wired correctly.
  Dataset ds;
  LabelingConfig lc;
  lc.arrivals_per_chain = 300.0;
  ds.samples.push_back(label_sample(small_system(), small_placement(), lc));
  Rng rng(5);
  core::ChainNetConfig cfg;
  cfg.hidden = 12;
  cfg.iterations = 2;
  core::ChainNet model(cfg, rng);
  TrainConfig tc = quick_config(150);
  tc.batch_size = 1;
  tc.learning_rate = 1e-2;
  train(model, ds, nullptr, tc);
  EXPECT_LT(evaluate_loss(model, ds), 2e-3);
}

TEST(Trainer, GradientClippingStabilizesRawOutputs) {
  // The alpha ablation regresses raw (large) targets; with clipping the
  // training loss must stay finite and decrease.
  const auto ds = tiny_dataset(16, 37);
  Rng rng(8);
  core::ChainNetConfig cfg = core::ChainNetConfig::ablation_alpha();
  cfg.hidden = 8;
  cfg.iterations = 2;
  core::ChainNet model(cfg, rng);
  TrainConfig tc = quick_config(8);
  tc.clip_grad_norm = 1.0;
  const auto report = train(model, ds, nullptr, tc);
  for (double loss : report.train_loss) EXPECT_TRUE(std::isfinite(loss));
  EXPECT_LT(report.train_loss.back(), report.train_loss.front());
}

TEST(Trainer, DeterministicGivenSeeds) {
  const auto ds = tiny_dataset(8, 36);
  auto make_loss = [&] {
    Rng rng(6);
    core::ChainNetConfig cfg;
    cfg.hidden = 8;
    cfg.iterations = 2;
    core::ChainNet model(cfg, rng);
    train(model, ds, nullptr, quick_config(3));
    return evaluate_loss(model, ds);
  };
  EXPECT_DOUBLE_EQ(make_loss(), make_loss());
}

}  // namespace
}  // namespace chainnet::gnn
