// Validation of the multi-server station extension against M/M/c (Erlang-C)
// and M/M/c/c (Erlang-B) closed forms, plus analytical unit tests of the
// new formulas themselves.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "queueing/analytical.h"
#include "queueing/network.h"
#include "queueing/simulator.h"

namespace chainnet::queueing {
namespace {

using support::Exponential;

QnModel multi_server(double lambda, double mu, int servers,
                     double capacity) {
  QnModel qn;
  qn.stations.push_back({"s0", capacity, servers});
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(1.0 / lambda);
  chain.steps.emplace_back(0, std::make_unique<Exponential>(1.0 / mu), 1.0);
  qn.chains.push_back(std::move(chain));
  return qn;
}

TEST(ErlangC, KnownValuesAndBounds) {
  // C(1, a) for a < 1 equals a (waiting prob of M/M/1 = rho).
  EXPECT_NEAR(erlang_c(1, 0.5), 0.5, 1e-12);
  // Erlang-C exceeds Erlang-B for the same (c, a).
  EXPECT_GT(erlang_c(4, 3.0), erlang_b(4, 3.0));
  EXPECT_THROW(erlang_c(2, 2.0), std::invalid_argument);
  EXPECT_THROW(erlang_c(0, 0.5), std::invalid_argument);
}

TEST(Mmc, ReducesToMm1) {
  const auto multi = mmc(0.7, 1.0, 1);
  const auto single = mm1(0.7, 1.0);
  EXPECT_NEAR(multi.mean_jobs, single.mean_jobs, 1e-12);
  EXPECT_NEAR(multi.mean_response, single.mean_response, 1e-12);
  EXPECT_NEAR(multi.utilization, single.utilization, 1e-12);
}

TEST(Mmc, PoolingBeatsSplitting) {
  // One pooled M/M/2 outperforms two separate M/M/1 at the same total load.
  const auto pooled = mmc(1.4, 1.0, 2);
  const auto split = mm1(0.7, 1.0);
  EXPECT_LT(pooled.mean_response, split.mean_response);
}

TEST(Mmc, RejectsUnstable) {
  EXPECT_THROW(mmc(2.0, 1.0, 2), std::invalid_argument);
  EXPECT_THROW(mmc(-1.0, 1.0, 2), std::invalid_argument);
}

TEST(StationSpec, ValidatesServerCount) {
  auto qn = multi_server(1.0, 1.0, 0, 10.0);
  EXPECT_THROW(qn.validate(), std::invalid_argument);
}

class MmcSimTest
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(MmcSimTest, MatchesErlangC) {
  const auto [lambda, mu, servers] = GetParam();
  // Huge memory => effectively infinite buffer.
  const auto qn = multi_server(lambda, mu, servers, 1e9);
  SimConfig cfg;
  cfg.horizon = 300000.0 / lambda;
  cfg.seed = 77;
  const auto sim = simulate(qn, cfg);
  const auto exact = mmc(lambda, mu, servers);
  EXPECT_NEAR(sim.stations[0].mean_jobs, exact.mean_jobs,
              0.05 * exact.mean_jobs);
  EXPECT_NEAR(sim.stations[0].utilization, exact.utilization,
              0.02 * exact.utilization);
  EXPECT_NEAR(sim.chains[0].mean_latency, exact.mean_response,
              0.05 * exact.mean_response);
}

INSTANTIATE_TEST_SUITE_P(
    LambdaMuServersGrid, MmcSimTest,
    ::testing::Values(std::make_tuple(1.4, 1.0, 2),
                      std::make_tuple(2.5, 1.0, 3),
                      std::make_tuple(0.9, 0.5, 4),
                      std::make_tuple(6.0, 1.0, 8)));

TEST(MmcSim, LossSystemMatchesErlangB) {
  // capacity == servers (unit memory): an M/M/c/c loss system.
  const double lambda = 4.0, mu = 1.0;
  const int c = 3;
  const auto qn = multi_server(lambda, mu, c, static_cast<double>(c));
  SimConfig cfg;
  cfg.horizon = 200000.0 / lambda;
  cfg.seed = 11;
  const auto sim = simulate(qn, cfg);
  const double expected = erlang_b(c, lambda / mu);
  EXPECT_NEAR(sim.chains[0].loss_probability, expected, 0.03 * expected);
  // No waiting room is ever used.
  EXPECT_LE(sim.stations[0].mean_jobs, static_cast<double>(c));
}

TEST(MmcSim, MoreServersReduceLatency) {
  SimConfig cfg;
  cfg.horizon = 100000.0;
  cfg.seed = 13;
  const auto one = simulate(multi_server(0.9, 1.0, 1, 1e9), cfg);
  const auto two = simulate(multi_server(0.9, 1.0, 2, 1e9), cfg);
  EXPECT_LT(two.chains[0].mean_latency, one.chains[0].mean_latency);
}

}  // namespace
}  // namespace chainnet::queueing
