// End-to-end scale-out drill against the real CLI binary (fork/exec):
// three `chainnet serve` backends behind one `chainnet route` front end,
// loopback clients driving load while the test (a) hot-swaps the model to
// v2 with zero dropped connections and (b) SIGKILLs a backend and asserts
// clients only ever see successes or TYPED rejects — never a protocol or
// transport error.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/chainnet.h"
#include "edge/json_io.h"
#include "edge/problem.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "support/json.h"
#include "support/rng.h"
#include "tensor/serialize.h"

namespace chainnet {
namespace {

using Clock = std::chrono::steady_clock;

core::ChainNetConfig small_config() {
  core::ChainNetConfig config;
  config.hidden = 8;
  config.iterations = 1;
  return config;
}

/// fork/exec the chainnet CLI with the given arguments; returns the pid.
pid_t spawn_cli(const std::vector<std::string>& args) {
  std::vector<std::string> full;
  full.push_back(CHAINNET_CLI_BINARY);
  full.insert(full.end(), args.begin(), args.end());
  std::vector<char*> argv;
  for (auto& arg : full) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  return pid;
}

/// Reads the first `count` integer lines from a port file written by the
/// CLI's --port-file handshake, polling until the process has produced it.
std::vector<int> await_ports(const std::string& path, std::size_t count,
                             double timeout_s = 30.0) {
  const auto give_up =
      Clock::now() + std::chrono::duration<double>(timeout_s);
  while (Clock::now() < give_up) {
    std::ifstream in(path);
    std::vector<int> ports;
    int port = 0;
    while (in >> port) ports.push_back(port);
    if (ports.size() >= count) return ports;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return {};
}

bool wait_exit(pid_t pid, double timeout_s) {
  const auto give_up =
      Clock::now() + std::chrono::duration<double>(timeout_s);
  while (Clock::now() < give_up) {
    int status = 0;
    const pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

void reap(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
}

std::string write_version(const std::filesystem::path& dir,
                          std::uint32_t version, std::uint64_t seed) {
  support::Rng rng(seed);
  core::ChainNet model(small_config(), rng);
  const auto params = dir / ("weights_v" + std::to_string(version) + ".bin");
  tensor::save_parameters(model, params.string());
  tensor::WeightsManifest manifest;
  manifest.version = version;
  manifest.params_path = params.filename().string();
  manifest.checksum = tensor::file_checksum(params.string());
  manifest.hidden = small_config().hidden;
  manifest.iterations = small_config().iterations;
  const auto path = dir / ("v" + std::to_string(version) + ".json");
  tensor::save_manifest(manifest, path.string());
  return path.string();
}

struct LoadStats {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> typed_rejects{0};
  std::atomic<std::uint64_t> transport_errors{0};
};

TEST(RouterIntegration, KillReloadFailoverUnderLoad) {
  const auto dir =
      std::filesystem::temp_directory_path() / "chainnet_router_drill";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Problem + two model versions on disk.
  support::Rng gen_rng(5);
  const auto system = edge::generate_placement_problem(
      edge::PlacementProblemParams::paper(13), gen_rng);
  edge::save_json(edge::to_json(system), (dir / "sys.json").string());
  const auto v1 = write_version(dir, 1, 11);
  const auto v2 = write_version(dir, 2, 22);
  const auto v2_checksum = tensor::checksum_to_string(
      tensor::load_manifest(v2).checksum);

  support::Rng placement_rng(23);
  std::vector<edge::Placement> placements;
  for (int i = 0; i < 16; ++i) {
    placements.push_back(edge::random_placement(system, placement_rng));
  }

  // Three registry-backed backends, then the router in front of them.
  std::vector<pid_t> children;
  std::vector<int> backend_ports;
  for (int b = 0; b < 3; ++b) {
    const auto port_file = (dir / ("backend" + std::to_string(b))).string();
    children.push_back(spawn_cli(
        {"serve", "--system", (dir / "sys.json").string(), "--manifest", v1,
         "--threads", "2", "--port-file", port_file}));
    const auto ports = await_ports(port_file, 1);
    ASSERT_EQ(ports.size(), 1u) << "backend " << b << " never came up";
    backend_ports.push_back(ports.front());
  }
  std::string backends_flag;
  for (const int port : backend_ports) {
    if (!backends_flag.empty()) backends_flag += ",";
    backends_flag += "127.0.0.1:" + std::to_string(port);
  }
  const auto router_ports_file = (dir / "router").string();
  const pid_t router_pid = spawn_cli(
      {"route", "--backends", backends_flag, "--affinity", "placement",
       "--health-ms", "50", "--port-file", router_ports_file});
  children.push_back(router_pid);
  const auto router_ports = await_ports(router_ports_file, 2);
  ASSERT_EQ(router_ports.size(), 2u) << "router never came up";
  const int router_port = router_ports[0];

  // Continuous load: placement affinity spreads these across all three
  // backends. Every outcome must be a success or a typed ServeError.
  std::atomic<bool> stop{false};
  LoadStats load;
  std::vector<std::thread> drivers;
  for (int c = 0; c < 4; ++c) {
    drivers.emplace_back([&, c] {
      std::unique_ptr<serve::Client> client;
      std::size_t i = static_cast<std::size_t>(c) * 5;
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          if (!client) {
            client = std::make_unique<serve::Client>("127.0.0.1",
                                                     router_port);
          }
          client->evaluate_one(placements[i++ % placements.size()]);
          load.ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const serve::ServeError&) {
          load.typed_rejects.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          load.transport_errors.fetch_add(1, std::memory_order_relaxed);
          client.reset();
        }
      }
    });
  }
  const auto warmed =
      Clock::now() + std::chrono::milliseconds(300);
  std::this_thread::sleep_until(warmed);
  ASSERT_GT(load.ok.load(), 0u) << "load never got through the router";

  // Phase A — hot swap to v2 while the load runs: the fanout must succeed
  // on every backend and no client connection may drop.
  const std::uint64_t transport_before_reload = load.transport_errors.load();
  {
    serve::Client admin("127.0.0.1", router_port);
    support::Json request;
    request["type"] = support::Json(std::string("reload"));
    request["manifest"] = support::Json(v2);
    const auto response = admin.call(request);
    const auto& results = response.at("results").as_array();
    ASSERT_EQ(results.size(), 3u);
    for (const auto& result : results) {
      EXPECT_TRUE(result.at("response").at("ok").as_bool())
          << result.at("response").dump();
    }
    // The router's merged stats now report v2's checksum on every backend.
    const auto stats = admin.stats();
    for (const auto& backend : stats.at("backends").as_array()) {
      ASSERT_TRUE(backend.has("stats")) << backend.dump();
      const auto& model = backend.at("stats").at("model");
      EXPECT_EQ(model.at("active").at("checksum").as_string(), v2_checksum)
          << backend.dump();
    }
  }
  EXPECT_EQ(load.transport_errors.load(), transport_before_reload)
      << "reload dropped client connections";

  // Phase B — SIGKILL one backend under load: the router must eject it and
  // keep serving; clients see typed rejects at worst.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const std::uint64_t ok_before_kill = load.ok.load();
  ::kill(children[1], SIGKILL);
  ::waitpid(children[1], nullptr, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  stop.store(true);
  for (auto& driver : drivers) driver.join();

  EXPECT_EQ(load.transport_errors.load(), transport_before_reload)
      << "backend death leaked a non-typed error to a client";
  EXPECT_GT(load.ok.load(), ok_before_kill)
      << "no request succeeded after the kill";

  // The router noticed: the dead backend is unhealthy in its stats.
  {
    serve::Client admin("127.0.0.1", router_port);
    const auto stats = admin.stats();
    const auto& backends = stats.at("backends").as_array();
    ASSERT_EQ(backends.size(), 3u);
    EXPECT_FALSE(backends[1].at("healthy").as_bool());
    EXPECT_TRUE(backends[0].at("healthy").as_bool());
    EXPECT_TRUE(backends[2].at("healthy").as_bool());
    EXPECT_GE(stats.at("ejections").as_number(), 1.0);
    // Shut everything down cleanly through the protocol.
    admin.request_shutdown();
  }
  EXPECT_TRUE(wait_exit(router_pid, 10.0)) << "router ignored shutdown";
  for (const int port : {backend_ports[0], backend_ports[2]}) {
    try {
      serve::Client backend("127.0.0.1", port);
      backend.request_shutdown();
    } catch (const std::exception&) {
    }
  }
  EXPECT_TRUE(wait_exit(children[0], 10.0));
  EXPECT_TRUE(wait_exit(children[2], 10.0));
  for (const pid_t pid : children) reap(pid);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace chainnet
