#include "tensor/nn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace chainnet::tensor {
namespace {

using chainnet::support::Rng;
using chainnet::testing::expect_gradient_matches;

TEST(Glorot, RangeMatchesFanInFanOut) {
  Rng rng(1);
  std::vector<double> w(10000);
  glorot_uniform(w, 30, 70, rng);
  const double bound = std::sqrt(6.0 / 100.0);
  double max_abs = 0.0, sum = 0.0;
  for (double v : w) {
    max_abs = std::max(max_abs, std::abs(v));
    sum += v;
  }
  EXPECT_LE(max_abs, bound);
  EXPECT_GT(max_abs, 0.9 * bound);  // the bound is approached
  EXPECT_NEAR(sum / static_cast<double>(w.size()), 0.0, 0.01);
}

TEST(Linear, ShapesAndValues) {
  Rng rng(2);
  Linear lin(3, 2, rng);
  EXPECT_EQ(lin.in_features(), 3u);
  EXPECT_EQ(lin.out_features(), 2u);
  auto y = lin.forward(Var::vector({1.0, -1.0, 0.5}));
  EXPECT_EQ(y.size(), 2u);
  EXPECT_THROW(lin.forward(Var::vector({1.0})), std::invalid_argument);
}

TEST(Linear, ParameterRegistry) {
  Rng rng(3);
  Linear lin(4, 5, rng, "fc");
  const auto params = lin.parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->name, "fc.w");
  EXPECT_EQ(params[1]->name, "fc.b");
  EXPECT_EQ(lin.parameter_count(), 4u * 5u + 5u);
}

TEST(Linear, GradCheck) {
  Rng rng(4);
  Linear lin(3, 2, rng);
  auto x = Var::vector({0.3, -0.8, 1.2});
  auto build = [&] {
    auto y = lin.forward(x);
    return mean(mul(y, y)).item();
  };
  {
    auto y = lin.forward(x);
    mean(mul(y, y)).backward();
  }
  for (Parameter* p : lin.parameters()) {
    expect_gradient_matches(p->var, build);
  }
}

TEST(Module, ZeroGradClearsGradients) {
  Rng rng(5);
  Linear lin(2, 2, rng);
  auto y = lin.forward(Var::vector({1.0, 1.0}));
  mean(mul(y, y)).backward();
  bool any_nonzero = false;
  for (Parameter* p : lin.parameters()) {
    for (double g : p->var.grad()) any_nonzero |= g != 0.0;
  }
  EXPECT_TRUE(any_nonzero);
  lin.zero_grad();
  for (Parameter* p : lin.parameters()) {
    for (double g : p->var.grad()) EXPECT_DOUBLE_EQ(g, 0.0);
  }
}

TEST(Mlp, OutputShapeAndActivation) {
  Rng rng(6);
  Mlp mlp({4, 8, 1}, Activation::kRelu, Activation::kSigmoid, rng);
  auto y = mlp.forward(Var::vector({1.0, -2.0, 0.5, 3.0}));
  EXPECT_EQ(y.size(), 1u);
  EXPECT_GT(y.item(), 0.0);
  EXPECT_LT(y.item(), 1.0);
}

TEST(Mlp, RejectsTooFewLayers) {
  Rng rng(7);
  EXPECT_THROW(Mlp({4}, Activation::kRelu, Activation::kNone, rng),
               std::invalid_argument);
}

TEST(Mlp, GradCheckThroughTwoLayers) {
  Rng rng(8);
  Mlp mlp({3, 4, 2}, Activation::kTanh, Activation::kNone, rng);
  auto x = Var::vector({0.3, -0.8, 1.2});
  auto build = [&] {
    auto y = mlp.forward(x);
    return mean(mul(y, y)).item();
  };
  {
    auto y = mlp.forward(x);
    mean(mul(y, y)).backward();
  }
  for (Parameter* p : mlp.parameters()) {
    expect_gradient_matches(p->var, build, 1e-6, 1e-4);
  }
}

TEST(ApplyActivation, AllVariants) {
  auto x = Var::vector({-1.0, 2.0});
  EXPECT_DOUBLE_EQ(apply_activation(x, Activation::kNone).value()[0], -1.0);
  EXPECT_DOUBLE_EQ(apply_activation(x, Activation::kRelu).value()[0], 0.0);
  EXPECT_NEAR(apply_activation(x, Activation::kTanh).value()[1],
              std::tanh(2.0), 1e-12);
  EXPECT_NEAR(apply_activation(x, Activation::kSigmoid).value()[1],
              1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  EXPECT_NEAR(apply_activation(x, Activation::kLeakyRelu).value()[0], -0.01,
              1e-12);
  EXPECT_NEAR(apply_activation(x, Activation::kSoftplus).value()[1],
              std::log1p(std::exp(2.0)), 1e-9);
}

TEST(GruCell, StateSizePreserved) {
  Rng rng(9);
  GruCell gru(4, 3, rng);
  EXPECT_EQ(gru.input_size(), 4u);
  EXPECT_EQ(gru.hidden_size(), 3u);
  auto h = Var::vector({0.1, -0.2, 0.3});
  auto x = Var::vector({1.0, 0.0, -1.0, 0.5});
  auto h2 = gru.forward(h, x);
  EXPECT_EQ(h2.size(), 3u);
  EXPECT_THROW(gru.forward(x, h), std::invalid_argument);
}

TEST(GruCell, InterpolatesBetweenCandidateAndState) {
  // GRU output is a convex combination of h and the tanh candidate, so it
  // stays within [-1, 1] when h does.
  Rng rng(10);
  GruCell gru(2, 3, rng);
  auto h = Var::vector({0.5, -0.5, 0.0});
  auto x = Var::vector({10.0, -10.0});
  auto h2 = gru.forward(h, x);
  for (double v : h2.value()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(GruCell, ParameterCount) {
  Rng rng(11);
  GruCell gru(4, 3, rng);
  // 3 input mats (3x4), 3 hidden mats (3x3), 6 biases (3).
  EXPECT_EQ(gru.parameter_count(), 3u * 12u + 3u * 9u + 6u * 3u);
}

TEST(GruCell, GradCheck) {
  Rng rng(12);
  GruCell gru(2, 2, rng);
  auto h = Var::vector({0.3, -0.4});
  auto x = Var::vector({0.8, -1.1});
  auto build = [&] {
    auto h2 = gru.forward(h, x);
    return mean(mul(h2, h2)).item();
  };
  {
    auto h2 = gru.forward(h, x);
    mean(mul(h2, h2)).backward();
  }
  for (Parameter* p : gru.parameters()) {
    expect_gradient_matches(p->var, build, 1e-6, 1e-4);
  }
}

TEST(Linear, ForwardValuesMatchesAutodiff) {
  Rng rng(31);
  Linear lin(5, 3, rng);
  const std::vector<double> x = {0.4, -1.2, 0.0, 2.2, -0.3};
  const auto slow = lin.forward(Var::vector(x));
  std::vector<double> fast(3);
  lin.forward_values(x, fast);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(slow.value()[i], fast[i]);
  }
  std::vector<double> wrong(2);
  EXPECT_THROW(lin.forward_values(x, wrong), std::invalid_argument);
}

TEST(Mlp, ForwardValuesMatchesAutodiff) {
  Rng rng(32);
  for (const auto out_act : {Activation::kSigmoid, Activation::kNone}) {
    Mlp mlp({4, 6, 2}, Activation::kRelu, out_act, rng);
    const std::vector<double> x = {0.4, -1.2, 0.7, 2.2};
    const auto slow = mlp.forward(Var::vector(x));
    std::vector<double> fast(2);
    mlp.forward_values(x, fast);
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_NEAR(slow.value()[i], fast[i], 1e-15);
    }
  }
}

TEST(GruCell, ForwardValuesMatchesAutodiff) {
  Rng rng(33);
  GruCell gru(4, 3, rng);
  const std::vector<double> h = {0.2, -0.5, 0.9};
  const std::vector<double> x = {1.0, -2.0, 0.3, 0.8};
  const auto slow = gru.forward(Var::vector(h), Var::vector(x));
  std::vector<double> fast(3);
  gru.forward_values(h, x, fast);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(slow.value()[i], fast[i], 1e-15);
  }
  std::vector<double> wrong(2);
  EXPECT_THROW(gru.forward_values(h, x, wrong), std::invalid_argument);
}

TEST(ApplyActivationValues, MatchesVarPath) {
  for (const auto act :
       {Activation::kNone, Activation::kRelu, Activation::kTanh,
        Activation::kSigmoid, Activation::kLeakyRelu,
        Activation::kSoftplus}) {
    const std::vector<double> x = {-2.0, -0.1, 0.0, 0.1, 3.0};
    const auto slow = apply_activation(Var::vector(x), act);
    std::vector<double> fast = x;
    apply_activation_values(fast, act);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(slow.value()[i], fast[i], 1e-15);
    }
  }
}

TEST(GruCell, RecurrentGradCheck) {
  // Unrolled twice — checks gradient flow through the recurrence.
  Rng rng(13);
  GruCell gru(2, 2, rng);
  auto h0 = Var::vector({0.0, 0.0});
  auto x1 = Var::vector({0.5, -0.2});
  auto x2 = Var::vector({-0.7, 0.9});
  auto build = [&] {
    auto h1 = gru.forward(h0, x1);
    auto h2 = gru.forward(h1, x2);
    return mean(mul(h2, h2)).item();
  };
  {
    auto h1 = gru.forward(h0, x1);
    auto h2 = gru.forward(h1, x2);
    mean(mul(h2, h2)).backward();
  }
  for (Parameter* p : gru.parameters()) {
    expect_gradient_matches(p->var, build, 1e-6, 1e-4);
  }
}

}  // namespace
}  // namespace chainnet::tensor
