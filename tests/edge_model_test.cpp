#include "edge/model.h"

#include <gtest/gtest.h>

#include "edge/placement.h"
#include "test_util.h"

namespace chainnet::edge {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;

TEST(EdgeSystem, CountsAndRates) {
  const auto sys = small_system();
  EXPECT_EQ(sys.num_devices(), 4);
  EXPECT_EQ(sys.num_chains(), 2);
  EXPECT_EQ(sys.total_fragments(), 5);
  EXPECT_DOUBLE_EQ(sys.total_arrival_rate(), 1.2);
}

TEST(EdgeSystem, ProcessingTimeUsesDeviceRate) {
  const auto sys = small_system();
  // Fragment (0,0) has r = 0.5; device 2 has R = 2.0.
  EXPECT_DOUBLE_EQ(sys.processing_time(0, 0, 2), 0.25);
  // Device 3 has R = 0.5.
  EXPECT_DOUBLE_EQ(sys.processing_time(0, 0, 3), 1.0);
}

TEST(EdgeSystem, ValidateCatchesBadInputs) {
  auto sys = small_system();
  EXPECT_NO_THROW(sys.validate());
  sys.devices[0].memory_capacity = 0.0;
  EXPECT_THROW(sys.validate(), std::invalid_argument);
  sys = small_system();
  sys.chains[0].arrival_rate = -1.0;
  EXPECT_THROW(sys.validate(), std::invalid_argument);
  sys = small_system();
  sys.chains[1].fragments.clear();
  EXPECT_THROW(sys.validate(), std::invalid_argument);
  sys = small_system();
  sys.chains[0].fragments[0].compute_demand = 0.0;
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(Placement, ShapeFromSystem) {
  const auto sys = small_system();
  Placement p(sys);
  EXPECT_EQ(p.num_chains(), 2);
  EXPECT_EQ(p.chain_length(0), 3);
  EXPECT_EQ(p.chain_length(1), 2);
  EXPECT_FALSE(p.complete());
  p.assign(0, 0, 1);
  EXPECT_EQ(p.device_of(0, 0), 1);
}

TEST(Placement, UsedDevicesSortedUnique) {
  const auto p = small_placement();
  const auto used = p.used_devices();
  EXPECT_EQ(used, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Placement, FragmentsOnSharedDevice) {
  const auto p = small_placement();
  const auto on1 = p.fragments_on(1);
  ASSERT_EQ(on1.size(), 2u);
  EXPECT_EQ(on1[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(on1[1], (std::pair<int, int>{1, 0}));
  EXPECT_TRUE(p.fragments_on(7).empty());
}

TEST(Placement, LoadsOnDevice) {
  const auto sys = small_system();
  const auto p = small_placement();
  // Device 1 runs fragments (0,1) r=0.7 and (1,0) r=0.2 at rate 1.0.
  EXPECT_DOUBLE_EQ(p.memory_load(sys, 1), 2.0);
  EXPECT_DOUBLE_EQ(p.processing_load(sys, 1), 0.9);
  EXPECT_DOUBLE_EQ(p.memory_load(sys, 2), 1.0);
}

TEST(Placement, MemoryFeasibility) {
  auto sys = small_system();
  const auto p = small_placement();
  EXPECT_TRUE(p.memory_feasible(sys));
  sys.devices[1].memory_capacity = 1.5;  // holds 2 units of demand
  EXPECT_FALSE(p.memory_feasible(sys));
}

TEST(Placement, DistinctDevicesInvariant) {
  Placement ok(std::vector<std::vector<int>>{{0, 1}, {0, 1}});
  EXPECT_TRUE(ok.distinct_devices_within_chains());
  Placement bad(std::vector<std::vector<int>>{{0, 0}});
  EXPECT_FALSE(bad.distinct_devices_within_chains());
}

TEST(Placement, ValidateRejectsStructuralErrors) {
  const auto sys = small_system();
  EXPECT_NO_THROW(small_placement().validate(sys));
  // Wrong chain count.
  Placement wrong_chains(std::vector<std::vector<int>>{{0, 1, 2}});
  EXPECT_THROW(wrong_chains.validate(sys), std::invalid_argument);
  // Unassigned fragment.
  Placement incomplete(sys);
  EXPECT_THROW(incomplete.validate(sys), std::invalid_argument);
  // Out-of-range device.
  Placement bad_device(std::vector<std::vector<int>>{{0, 1, 9}, {1, 3}});
  EXPECT_THROW(bad_device.validate(sys), std::invalid_argument);
  // Duplicate device within a chain.
  Placement dup(std::vector<std::vector<int>>{{0, 1, 0}, {1, 3}});
  EXPECT_THROW(dup.validate(sys), std::invalid_argument);
}

TEST(Placement, EqualityComparesAssignments) {
  EXPECT_EQ(small_placement(), small_placement());
  auto other = small_placement();
  other.assign(0, 0, 3);
  EXPECT_NE(other, small_placement());
}

}  // namespace
}  // namespace chainnet::edge
