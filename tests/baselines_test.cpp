#include "gnn/baselines.h"

#include <gtest/gtest.h>

#include <cmath>

#include "edge/graph.h"
#include "test_util.h"

namespace chainnet::gnn {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;
using support::Rng;

edge::PlacementGraph modified_graph() {
  return edge::build_graph(small_system(), small_placement(),
                           edge::FeatureMode::kModified);
}

BaselineConfig tiny_config(PredictionHead head = PredictionHead::kThroughput) {
  BaselineConfig cfg;
  cfg.hidden = 8;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.head = head;
  return cfg;
}

TEST(HomogeneousFeatures, TypeOneHotAndPadding) {
  const auto g = modified_graph();
  const auto feats = homogeneous_features(g);
  ASSERT_EQ(feats.size(), 11u);
  // Service node 0: type bit 0 set, lambda slot carries feature.
  EXPECT_DOUBLE_EQ(feats[0][0], 1.0);
  EXPECT_DOUBLE_EQ(feats[0][1], 0.0);
  EXPECT_DOUBLE_EQ(feats[0][3], 1.0);  // modified service feature
  // Fragment node: type bit 1, three feature slots.
  EXPECT_DOUBLE_EQ(feats[2][1], 1.0);
  // Device node: type bit 2.
  EXPECT_DOUBLE_EQ(feats[7][2], 1.0);
  for (const auto& f : feats) EXPECT_EQ(f.size(), 6u);
}

TEST(BidirectionalAdjacency, EveryEdgeBothWays) {
  const auto g = modified_graph();
  const auto adj = bidirectional_adjacency(g);
  ASSERT_EQ(adj.size(), 11u);
  for (const auto& e : g.edges) {
    const auto& out = adj[static_cast<std::size_t>(e.src)];
    const auto& in = adj[static_cast<std::size_t>(e.dst)];
    EXPECT_NE(std::find(out.begin(), out.end(), e.dst), out.end());
    EXPECT_NE(std::find(in.begin(), in.end(), e.src), in.end());
  }
  // Service nodes stay isolated (degree 0) per Algorithm 1.
  EXPECT_TRUE(adj[0].empty());
  EXPECT_TRUE(adj[1].empty());
}

TEST(Gat, ForwardShapesAndRange) {
  Rng rng(1);
  Gat gat(tiny_config(), rng);
  const auto out = gat.forward(modified_graph());
  ASSERT_EQ(out.size(), 2u);
  for (const auto& o : out) {
    ASSERT_TRUE(o.throughput.defined());
    EXPECT_FALSE(o.latency.defined());  // single-head baseline
    const double v = o.throughput.item();
    EXPECT_GT(v, 0.0);  // sigmoid output in modified mode
    EXPECT_LT(v, 1.0);
  }
  EXPECT_EQ(gat.name(), "GAT");
  EXPECT_TRUE(gat.ratio_outputs());
}

TEST(Gat, StarVariantUsesRawFeaturesAndOutputs) {
  Rng rng(2);
  auto cfg = tiny_config();
  cfg.mode = edge::FeatureMode::kOriginal;
  Gat gat(cfg, rng);
  EXPECT_EQ(gat.name(), "GAT*");
  EXPECT_FALSE(gat.ratio_outputs());
  EXPECT_EQ(gat.feature_mode(), edge::FeatureMode::kOriginal);
  const auto g = edge::build_graph(small_system(), small_placement(),
                                   edge::FeatureMode::kOriginal);
  const auto out = gat.forward(g);
  EXPECT_TRUE(std::isfinite(out[0].throughput.item()));
}

TEST(Gat, DeterministicForward) {
  Rng rng(3);
  Gat gat(tiny_config(), rng);
  const auto g = modified_graph();
  const double a = gat.forward(g)[0].throughput.item();
  const double b = gat.forward(g)[0].throughput.item();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Gat, GradientsReachAllParameters) {
  Rng rng(4);
  Gat gat(tiny_config(PredictionHead::kBoth), rng);
  const auto g = modified_graph();
  const auto out = gat.forward(g);
  tensor::Var loss = tensor::add(out[0].throughput, out[1].latency);
  loss.backward();
  std::size_t touched = 0;
  for (auto* p : gat.parameters()) {
    for (double gr : p->var.grad()) {
      if (gr != 0.0) {
        ++touched;
        break;
      }
    }
  }
  // Nearly all parameters should receive gradient (readout + all layers).
  EXPECT_GT(touched, gat.parameters().size() / 2);
}

TEST(Gin, ForwardAndVariants) {
  Rng rng(5);
  Gin gin(tiny_config(PredictionHead::kLatency), rng);
  const auto out = gin.forward(modified_graph());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].throughput.defined());
  ASSERT_TRUE(out[0].latency.defined());
  EXPECT_GT(out[0].latency.item(), 0.0);
  EXPECT_LT(out[0].latency.item(), 1.0);
  EXPECT_EQ(gin.name(), "GIN");

  auto cfg = tiny_config();
  cfg.mode = edge::FeatureMode::kOriginal;
  Rng rng2(6);
  Gin star(cfg, rng2);
  EXPECT_EQ(star.name(), "GIN*");
}

TEST(Gin, DifferentGraphsGiveDifferentOutputs) {
  Rng rng(7);
  Gin gin(tiny_config(), rng);
  const auto sys = small_system();
  const auto g1 = edge::build_graph(sys, small_placement(),
                                    edge::FeatureMode::kModified);
  edge::Placement other(std::vector<std::vector<int>>{{3, 1, 2}, {1, 0}});
  const auto g2 =
      edge::build_graph(sys, other, edge::FeatureMode::kModified);
  EXPECT_NE(gin.forward(g1)[0].throughput.item(),
            gin.forward(g2)[0].throughput.item());
}

TEST(Gat, StableOnExtremeRawFeatures) {
  // Regression: raw-feature (GAT*) inputs can be large (M_k, lambda); the
  // attention softmax must not overflow to NaN/Inf.
  Rng rng(41);
  auto cfg = tiny_config();
  cfg.mode = edge::FeatureMode::kOriginal;
  Gat gat(cfg, rng);
  auto sys = small_system();
  sys.devices[0].memory_capacity = 1e6;
  sys.chains[0].arrival_rate = 500.0;
  sys.chains[0].fragments[0].compute_demand = 300.0;
  const auto g = edge::build_graph(sys, small_placement(),
                                   edge::FeatureMode::kOriginal);
  const auto out = gat.forward(g);
  for (const auto& o : out) {
    EXPECT_TRUE(std::isfinite(o.throughput.item()));
  }
}

TEST(Gcn, ForwardRangesAndNames) {
  Rng rng(21);
  Gcn gcn(tiny_config(PredictionHead::kBoth), rng);
  const auto out = gcn.forward(modified_graph());
  ASSERT_EQ(out.size(), 2u);
  for (const auto& o : out) {
    ASSERT_TRUE(o.throughput.defined());
    ASSERT_TRUE(o.latency.defined());
    EXPECT_GT(o.throughput.item(), 0.0);
    EXPECT_LT(o.throughput.item(), 1.0);
  }
  EXPECT_EQ(gcn.name(), "GCN");
  auto cfg = tiny_config();
  cfg.mode = edge::FeatureMode::kOriginal;
  Rng rng2(22);
  EXPECT_EQ(Gcn(cfg, rng2).name(), "GCN*");
}

TEST(Gcn, GradientsFlow) {
  Rng rng(23);
  Gcn gcn(tiny_config(), rng);
  const auto out = gcn.forward(modified_graph());
  out[0].throughput.backward();
  std::size_t touched = 0;
  for (auto* p : gcn.parameters()) {
    for (double gr : p->var.grad()) {
      if (gr != 0.0) {
        ++touched;
        break;
      }
    }
  }
  EXPECT_GT(touched, 0u);
}

TEST(Gin, ParameterCountScalesWithLayers) {
  Rng rng(8);
  auto cfg2 = tiny_config();
  auto cfg4 = tiny_config();
  cfg4.layers = 4;
  Gin small(cfg2, rng);
  Gin big(cfg4, rng);
  EXPECT_GT(big.parameter_count(), small.parameter_count());
}

}  // namespace
}  // namespace chainnet::gnn
