#include "tensor/variable.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace chainnet::tensor {
namespace {

using chainnet::testing::expect_gradient_matches;

TEST(Shape, SizeAndPredicates) {
  EXPECT_EQ((Shape{3, 4}).size(), 12u);
  EXPECT_TRUE((Shape{5, 1}).is_vector());
  EXPECT_FALSE((Shape{5, 2}).is_vector());
  EXPECT_TRUE((Shape{1, 1}).is_scalar());
  EXPECT_EQ((Shape{2, 3}).str(), "[2,3]");
}

TEST(Var, LeafConstruction) {
  auto v = Var::vector({1.0, 2.0, 3.0});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v.value()[1], 2.0);
  EXPECT_THROW(Var::leaf(Shape{2, 2}, {1.0}), std::invalid_argument);
}

TEST(Var, ItemRequiresScalar) {
  EXPECT_DOUBLE_EQ(Var::scalar(5.0).item(), 5.0);
  EXPECT_THROW(Var::vector({1.0, 2.0}).item(), std::invalid_argument);
}

TEST(Var, BackwardRequiresScalar) {
  auto v = Var::vector({1.0, 2.0}, true);
  EXPECT_THROW(v.backward(), std::invalid_argument);
}

TEST(Ops, AddValuesAndShapeCheck) {
  auto a = Var::vector({1.0, 2.0});
  auto b = Var::vector({10.0, 20.0});
  auto c = add(a, b);
  EXPECT_DOUBLE_EQ(c.value()[0], 11.0);
  EXPECT_DOUBLE_EQ(c.value()[1], 22.0);
  EXPECT_THROW(add(a, Var::vector({1.0, 2.0, 3.0})), std::invalid_argument);
}

TEST(Ops, MatvecValues) {
  auto w = Var::leaf(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  auto x = Var::vector({1.0, 0.0, -1.0});
  auto y = matvec(w, x);
  EXPECT_DOUBLE_EQ(y.value()[0], -2.0);
  EXPECT_DOUBLE_EQ(y.value()[1], -2.0);
}

TEST(Ops, MatmulValues) {
  auto a = Var::leaf(Shape{2, 2}, {1, 2, 3, 4});
  auto b = Var::leaf(Shape{2, 2}, {5, 6, 7, 8});
  auto c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c.value()[0], 19.0);
  EXPECT_DOUBLE_EQ(c.value()[1], 22.0);
  EXPECT_DOUBLE_EQ(c.value()[2], 43.0);
  EXPECT_DOUBLE_EQ(c.value()[3], 50.0);
}

TEST(Ops, ConcatValuesAndOrder) {
  auto a = Var::vector({1.0});
  auto b = Var::vector({2.0, 3.0});
  auto c = concat({a, b});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.value()[0], 1.0);
  EXPECT_DOUBLE_EQ(c.value()[2], 3.0);
}

TEST(Ops, SoftmaxNormalizes) {
  auto s = softmax(Var::vector({1.0, 2.0, 3.0}));
  double sum = 0.0;
  for (double v : s.value()) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(s.value()[2], s.value()[1]);
}

TEST(Ops, SoftmaxStableForLargeInputs) {
  auto s = softmax(Var::vector({1000.0, 1001.0}));
  EXPECT_TRUE(std::isfinite(s.value()[0]));
  EXPECT_NEAR(s.value()[0] + s.value()[1], 1.0, 1e-12);
}

TEST(Ops, ReductionValues) {
  auto v = Var::vector({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(sum(v).item(), 6.0);
  EXPECT_DOUBLE_EQ(mean(v).item(), 2.0);
}

TEST(Ops, MseValue) {
  auto a = Var::vector({1.0, 3.0});
  auto b = Var::vector({0.0, 1.0});
  EXPECT_DOUBLE_EQ(mse(a, b).item(), (1.0 + 4.0) / 2.0);
}

TEST(Ops, LogRejectsNonPositive) {
  EXPECT_THROW(log_(Var::vector({0.0})), std::domain_error);
  EXPECT_THROW(log_(Var::vector({-1.0})), std::domain_error);
}

TEST(Backward, LeafGradAccumulatesAcrossRebuiltGraphs) {
  // The accumulation contract: leaves keep their gradients across backward
  // calls, while each forward pass builds fresh intermediates (this is how
  // the trainer accumulates a batch).
  auto x = Var::vector({2.0}, true);
  sum(mul(x, x)).backward();
  sum(mul(x, x)).backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 8.0);  // 2 * (2x) at x=2
}

TEST(Backward, SharedSubgraphCountedOnce) {
  auto x = Var::vector({3.0}, true);
  auto y = mul(x, x);       // x^2
  auto z = add(y, y);       // 2 x^2 -> dz/dx = 4x = 12
  sum(z).backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 12.0);
}

TEST(Backward, NoGradLeafUntouched) {
  auto x = Var::vector({1.0}, false);
  auto y = Var::vector({2.0}, true);
  auto z = mul(x, y);
  sum(z).backward();
  EXPECT_TRUE(x.grad().empty());
  EXPECT_DOUBLE_EQ(y.grad()[0], 1.0);
}

// ------------------------- finite-difference gradient checks -----------

/// Each case builds loss = mean(op(x, maybe y)) and checks d loss / d x.
TEST(GradCheck, Add) {
  auto x = Var::vector({0.5, -1.2, 2.0}, true);
  auto y = Var::vector({1.0, 0.3, -0.7}, true);
  auto build = [&] { return mean(mul(add(x, y), add(x, y))).item(); };
  auto loss = mean(mul(add(x, y), add(x, y)));
  loss.backward();
  expect_gradient_matches(x, build);
  expect_gradient_matches(y, build);
}

TEST(GradCheck, Sub) {
  auto x = Var::vector({0.5, -1.2}, true);
  auto y = Var::vector({1.0, 0.3}, true);
  auto build = [&] { return mean(mul(sub(x, y), sub(x, y))).item(); };
  mean(mul(sub(x, y), sub(x, y))).backward();
  expect_gradient_matches(x, build);
  expect_gradient_matches(y, build);
}

TEST(GradCheck, Mul) {
  auto x = Var::vector({0.5, -1.2, 0.1}, true);
  auto y = Var::vector({1.0, 0.3, 2.0}, true);
  auto build = [&] { return sum(mul(x, y)).item(); };
  sum(mul(x, y)).backward();
  expect_gradient_matches(x, build);
  expect_gradient_matches(y, build);
}

TEST(GradCheck, ScaleAndAddScalar) {
  auto x = Var::vector({0.5, -1.2}, true);
  auto build = [&] { return sum(add_scalar(scale(x, 3.0), 2.0)).item(); };
  sum(add_scalar(scale(x, 3.0), 2.0)).backward();
  expect_gradient_matches(x, build);
}

TEST(GradCheck, Matvec) {
  auto w = Var::leaf(Shape{2, 3}, {0.1, -0.2, 0.3, 0.4, 0.5, -0.6}, true);
  auto x = Var::vector({1.0, -1.0, 0.5}, true);
  auto build = [&] { return mean(mul(matvec(w, x), matvec(w, x))).item(); };
  mean(mul(matvec(w, x), matvec(w, x))).backward();
  expect_gradient_matches(w, build);
  expect_gradient_matches(x, build);
}

TEST(GradCheck, Matmul) {
  auto a = Var::leaf(Shape{2, 3}, {0.1, -0.2, 0.3, 0.4, 0.5, -0.6}, true);
  auto b = Var::leaf(Shape{3, 2}, {1.0, 0.0, -1.0, 0.5, 0.2, 0.7}, true);
  auto build = [&] { return mean(mul(matmul(a, b), matmul(a, b))).item(); };
  mean(mul(matmul(a, b), matmul(a, b))).backward();
  expect_gradient_matches(a, build);
  expect_gradient_matches(b, build);
}

TEST(GradCheck, Dot) {
  auto x = Var::vector({0.5, -1.2, 0.1}, true);
  auto y = Var::vector({1.0, 0.3, 2.0}, true);
  auto build = [&] { return dot(x, y).item(); };
  dot(x, y).backward();
  expect_gradient_matches(x, build);
  expect_gradient_matches(y, build);
}

TEST(GradCheck, Concat) {
  auto x = Var::vector({0.5, -1.2}, true);
  auto y = Var::vector({1.0}, true);
  auto build = [&] {
    auto c = concat({x, y});
    return mean(mul(c, c)).item();
  };
  {
    auto c = concat({x, y});
    mean(mul(c, c)).backward();
  }
  expect_gradient_matches(x, build);
  expect_gradient_matches(y, build);
}

TEST(GradCheck, Activations) {
  struct Case {
    const char* name;
    Var (*fn)(const Var&);
  };
  const Case cases[] = {
      {"sigmoid", [](const Var& v) { return sigmoid(v); }},
      {"tanh", [](const Var& v) { return tanh_(v); }},
      {"softplus", [](const Var& v) { return softplus(v); }},
      {"exp", [](const Var& v) { return exp_(v); }},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    auto x = Var::vector({0.5, -1.2, 2.0, -0.1}, true);
    auto build = [&] { return sum(c.fn(x)).item(); };
    sum(c.fn(x)).backward();
    expect_gradient_matches(x, build);
  }
}

TEST(GradCheck, ReluAwayFromKink) {
  auto x = Var::vector({0.5, -1.2, 2.0}, true);
  auto build = [&] { return sum(relu(x)).item(); };
  sum(relu(x)).backward();
  expect_gradient_matches(x, build);
}

TEST(GradCheck, LeakyReluAwayFromKink) {
  auto x = Var::vector({0.5, -1.2, 2.0}, true);
  auto build = [&] { return sum(leaky_relu(x, 0.2)).item(); };
  sum(leaky_relu(x, 0.2)).backward();
  expect_gradient_matches(x, build);
}

TEST(GradCheck, Log) {
  auto x = Var::vector({0.5, 1.2, 2.0}, true);
  auto build = [&] { return sum(log_(x)).item(); };
  sum(log_(x)).backward();
  expect_gradient_matches(x, build);
}

TEST(GradCheck, Softmax) {
  auto x = Var::vector({0.5, -1.2, 2.0}, true);
  auto t = Var::vector({1.0, 0.0, 0.0});
  auto build = [&] { return mse(softmax(x), t).item(); };
  mse(softmax(x), t).backward();
  expect_gradient_matches(x, build);
}

TEST(GradCheck, SumOfAndMeanOf) {
  auto x = Var::vector({0.5, -1.2}, true);
  auto y = Var::vector({1.0, 0.3}, true);
  auto z = Var::vector({-0.4, 0.9}, true);
  auto build = [&] {
    auto m = mean_of({x, y, z});
    auto s = sum_of({x, y});
    return add(sum(mul(m, m)), sum(mul(s, s))).item();
  };
  {
    auto m = mean_of({x, y, z});
    auto s = sum_of({x, y});
    add(sum(mul(m, m)), sum(mul(s, s))).backward();
  }
  expect_gradient_matches(x, build);
  expect_gradient_matches(y, build);
  expect_gradient_matches(z, build);
}

TEST(GradCheck, WeightedSum) {
  auto w1 = Var::scalar(0.3, true);
  auto w2 = Var::scalar(-0.8, true);
  auto v1 = Var::vector({1.0, 2.0}, true);
  auto v2 = Var::vector({-0.5, 0.7}, true);
  auto build = [&] {
    auto ws = weighted_sum({w1, w2}, {v1, v2});
    return sum(mul(ws, ws)).item();
  };
  {
    auto ws = weighted_sum({w1, w2}, {v1, v2});
    sum(mul(ws, ws)).backward();
  }
  expect_gradient_matches(w1, build);
  expect_gradient_matches(w2, build);
  expect_gradient_matches(v1, build);
  expect_gradient_matches(v2, build);
}

TEST(GradCheck, DeepComposition) {
  // A GRU-like composition exercising many ops at once.
  auto w = Var::leaf(Shape{3, 3},
                     {0.1, -0.2, 0.3, 0.0, 0.5, -0.6, 0.2, 0.1, -0.3}, true);
  auto x = Var::vector({0.4, -0.9, 1.1}, true);
  auto build = [&] {
    auto z = sigmoid(matvec(w, x));
    auto n = tanh_(matvec(w, mul(z, x)));
    auto h = add(mul(z, n), sub(x, mul(z, x)));
    return mean(mul(h, h)).item();
  };
  {
    auto z = sigmoid(matvec(w, x));
    auto n = tanh_(matvec(w, mul(z, x)));
    auto h = add(mul(z, n), sub(x, mul(z, x)));
    mean(mul(h, h)).backward();
  }
  expect_gradient_matches(w, build, 1e-6, 1e-4);
  expect_gradient_matches(x, build, 1e-6, 1e-4);
}

}  // namespace
}  // namespace chainnet::tensor
