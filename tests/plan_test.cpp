// Compiled execution plans (gnn/plan.h): the contracts the plan IR PR
// rests on.
//  * Parity gate: plan replay (forward_values / forward_values_batch) must
//    equal the interpreted Algorithm-2 reference executor bit-for-bit, on
//    every ablation configuration and every B in {1, 2, 7, 32};
//  * Cache keying: placement-only and weight-only mutations never
//    recompile, a topology change does, and distinct batch widths compile
//    distinct plans;
//  * Concurrency: concurrent first lookups through one shared cache
//    produce exactly one compile and bit-identical outputs (the TSan
//    coverage for read-only plan sharing — wired into check_tsan.sh);
//  * Plumbing: EvalService injects one cache into all workers, the model
//    registry's cache survives a weights hot swap, and CHAINNET_INTERPRET=1
//    dispatches to the reference executor without compiling anything.
#include "gnn/plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/chainnet.h"
#include "core/surrogate.h"
#include "edge/graph.h"
#include "edge/problem.h"
#include "gnn/model.h"
#include "gnn/plan_compiler.h"
#include "optim/evaluator.h"
#include "runtime/eval_service.h"
#include "runtime/thread_pool.h"
#include "serve/registry.h"
#include "support/rng.h"
#include "tensor/serialize.h"

namespace chainnet::core {
namespace {

using support::Rng;

edge::EdgeSystem medium_system(std::uint64_t seed) {
  auto params = edge::PlacementProblemParams::paper(16);
  Rng rng(seed);
  return edge::generate_placement_problem(params, rng);
}

std::vector<edge::Placement> random_placements(const edge::EdgeSystem& system,
                                               int count,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<edge::Placement> placements;
  placements.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    placements.push_back(edge::random_placement(system, rng));
  }
  return placements;
}

std::vector<edge::PlacementGraph> build_graphs(
    const ChainNet& model, const edge::EdgeSystem& system,
    std::span<const edge::Placement> placements) {
  std::vector<edge::PlacementGraph> graphs;
  graphs.reserve(placements.size());
  for (const auto& p : placements) {
    graphs.push_back(edge::build_graph(system, p, model.feature_mode()));
  }
  return graphs;
}

std::vector<const edge::PlacementGraph*> pointers(
    const std::vector<edge::PlacementGraph>& graphs) {
  std::vector<const edge::PlacementGraph*> ptrs;
  ptrs.reserve(graphs.size());
  for (const auto& g : graphs) ptrs.push_back(&g);
  return ptrs;
}

void expect_values_equal(const std::vector<gnn::ChainValues>& a,
                         const std::vector<gnn::ChainValues>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].has_throughput, b[i].has_throughput) << "chain " << i;
    EXPECT_EQ(a[i].has_latency, b[i].has_latency) << "chain " << i;
    EXPECT_EQ(a[i].throughput, b[i].throughput) << "chain " << i;
    EXPECT_EQ(a[i].latency, b[i].latency) << "chain " << i;
  }
}

struct NamedConfig {
  const char* name;
  ChainNetConfig cfg;
};

/// Every ablation of the batch-parity suite plus the unfused kernel path:
/// the plan executor must be bit-exact on all of them.
std::vector<NamedConfig> all_configs() {
  ChainNetConfig no_attention;
  no_attention.attention_aggregation = false;
  ChainNetConfig unfused;
  unfused.fused_kernels = false;
  return {{"chainnet", ChainNetConfig{}},
          {"alpha", ChainNetConfig::ablation_alpha()},
          {"beta", ChainNetConfig::ablation_beta()},
          {"delta", ChainNetConfig::ablation_delta()},
          {"mean_agg", no_attention},
          {"unfused", unfused}};
}

class PlanParitySweep : public ::testing::TestWithParam<int> {};

TEST_P(PlanParitySweep, ReplayMatchesInterpretedOnEveryConfig) {
  const int batch = GetParam();
  const auto system = medium_system(42);
  const auto placements = random_placements(system, batch, 7);
  for (const auto& named : all_configs()) {
    auto cfg = named.cfg;
    cfg.hidden = 16;
    cfg.iterations = 3;
    Rng rng(3);
    ChainNet model(cfg, rng);
    SCOPED_TRACE(named.name);

    const auto graphs = build_graphs(model, system, placements);
    const auto ptrs = pointers(graphs);

    // Scalar executor vs the interpreted walk, per lane.
    for (std::size_t b = 0; b < graphs.size(); ++b) {
      SCOPED_TRACE("lane " + std::to_string(b));
      const auto replayed = model.forward_values(graphs[b]);
      const auto reference = model.forward_values_interpreted(graphs[b]);
      expect_values_equal(replayed, reference);
    }

    // Batched executor vs the interpreted batch walk.
    const auto replayed = model.forward_values_batch(ptrs);
    const auto reference = model.forward_values_batch_interpreted(ptrs);
    ASSERT_EQ(replayed.size(), reference.size());
    for (std::size_t b = 0; b < replayed.size(); ++b) {
      SCOPED_TRACE("batch lane " + std::to_string(b));
      expect_values_equal(replayed[b], reference[b]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PlanParitySweep,
                         ::testing::Values(1, 2, 7, 32));

TEST(PlanCache, PlacementMutationsNeverRecompile) {
  const auto system = medium_system(42);
  const auto placements = random_placements(system, 8, 11);
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  Rng rng(3);
  ChainNet model(cfg, rng);
  const auto graphs = build_graphs(model, system, placements);
  for (const auto& g : graphs) model.forward_values(g);
  const auto stats = model.plan_cache()->stats();
  EXPECT_EQ(stats.compiles, 1u) << "placement-only changes must replay";
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCache, WeightMutationChangesOutputsWithoutRecompiling) {
  const auto system = medium_system(42);
  const auto placements = random_placements(system, 1, 11);
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  Rng rng(3);
  ChainNet model(cfg, rng);
  const auto graph =
      edge::build_graph(system, placements[0], model.feature_mode());

  const auto before = model.forward_values(graph);
  ASSERT_FALSE(model.parameters().empty());
  model.parameters()[0]->var.mutable_value()[0] += 0.25;
  const auto after = model.forward_values(graph);

  bool changed = false;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i].throughput != after[i].throughput) changed = true;
  }
  EXPECT_TRUE(changed) << "weight mutation must reach the replayed forward";
  EXPECT_EQ(model.plan_cache()->stats().compiles, 1u)
      << "plans are weight-independent";
}

TEST(PlanCache, TopologyChangeCompilesANewPlan) {
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  Rng rng(3);
  ChainNet model(cfg, rng);

  const auto system_a = medium_system(42);
  const auto system_b = medium_system(43);
  const auto p_a = random_placements(system_a, 1, 11);
  const auto p_b = random_placements(system_b, 1, 11);
  model.forward_values(
      edge::build_graph(system_a, p_a[0], model.feature_mode()));
  EXPECT_EQ(model.plan_cache()->stats().compiles, 1u);
  model.forward_values(
      edge::build_graph(system_b, p_b[0], model.feature_mode()));
  EXPECT_EQ(model.plan_cache()->stats().compiles, 2u)
      << "a different system topology must compile its own plan";
  // Returning to the first system replays its still-cached plan.
  model.forward_values(
      edge::build_graph(system_a, p_a[0], model.feature_mode()));
  EXPECT_EQ(model.plan_cache()->stats().compiles, 2u);
}

TEST(PlanCache, DistinctWidthsCompileDistinctPlans) {
  const auto system = medium_system(42);
  const auto placements = random_placements(system, 4, 11);
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  Rng rng(3);
  ChainNet model(cfg, rng);
  const auto graphs = build_graphs(model, system, placements);
  const auto ptrs = pointers(graphs);

  model.forward_values(graphs[0]);       // width 1
  model.forward_values_batch(ptrs);      // width 4
  EXPECT_EQ(model.plan_cache()->stats().compiles, 2u);
  model.forward_values_batch(ptrs);      // replay
  model.forward_values(graphs[1]);       // replay
  EXPECT_EQ(model.plan_cache()->stats().compiles, 2u);
}

TEST(PlanCache, DistinctDtypesCompileDistinctPlans) {
  // dtype is part of the plan key: an f32 model must never replay through
  // a plan another model compiled as f64 (the executors size and type the
  // arena by the key's element width) — one compile per dtype, no
  // cross-dtype reuse.
  const auto system = medium_system(42);
  const auto placements = random_placements(system, 4, 11);
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  Rng rng_f64(3);
  ChainNet model_f64(cfg, rng_f64);
  auto cfg_f32 = cfg;
  cfg_f32.dtype = tensor::DType::kF32;
  Rng rng_f32(3);
  ChainNet model_f32(cfg_f32, rng_f32);
  const auto cache = std::make_shared<gnn::PlanCache>();
  model_f64.set_plan_cache(cache);
  model_f32.set_plan_cache(cache);
  const auto graphs = build_graphs(model_f64, system, placements);
  const auto ptrs = pointers(graphs);

  model_f64.forward_values(graphs[0]);
  EXPECT_EQ(cache->stats().compiles, 1u);
  model_f32.forward_values(graphs[0]);
  EXPECT_EQ(cache->stats().compiles, 2u)
      << "the f32 tier must compile its own plan, not reuse the f64 one";
  model_f64.forward_values_batch(ptrs);
  model_f32.forward_values_batch(ptrs);
  EXPECT_EQ(cache->stats().compiles, 4u);
  // Replays: every (dtype, width) combination is now cached.
  model_f64.forward_values(graphs[1]);
  model_f32.forward_values(graphs[1]);
  model_f64.forward_values_batch(ptrs);
  model_f32.forward_values_batch(ptrs);
  EXPECT_EQ(cache->stats().compiles, 4u);

  // Same weights (same init seed): the reduced tier tracks the f64 values
  // to f32 roundoff while the plans stay separate.
  const auto out64 = model_f64.forward_values(graphs[0]);
  const auto out32 = model_f32.forward_values(graphs[0]);
  ASSERT_EQ(out64.size(), out32.size());
  for (std::size_t i = 0; i < out64.size(); ++i) {
    EXPECT_NEAR(out32[i].throughput, out64[i].throughput,
                1e-4 * std::abs(out64[i].throughput) + 1e-6)
        << "chain " << i;
  }
}

TEST(PlanCache, DtypeChangesFingerprintAndKeyEquality) {
  gnn::PlanShape f64_shape;
  f64_shape.hidden = 8;
  f64_shape.iterations = 2;
  f64_shape.attention_heads = 2;
  auto f32_shape = f64_shape;
  f32_shape.dtype = tensor::DType::kF32;
  EXPECT_FALSE(f64_shape == f32_shape);
  const auto system = medium_system(42);
  const auto g = edge::build_graph(
      system, random_placements(system, 1, 11)[0], edge::FeatureMode::kModified);
  EXPECT_NE(gnn::plan_fingerprint(g, f64_shape, 4),
            gnn::plan_fingerprint(g, f32_shape, 4));
}

TEST(PlanCache, ConcurrentFirstLookupsCompileOnceAndMatchSerial) {
  const auto system = medium_system(42);
  const auto placements = random_placements(system, 4, 11);
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;

  Rng serial_rng(3);
  ChainNet serial_model(cfg, serial_rng);
  const auto graphs = build_graphs(serial_model, system, placements);
  std::vector<std::vector<gnn::ChainValues>> serial;
  for (const auto& g : graphs) serial.push_back(serial_model.forward_values(g));

  // Fresh shared cache; every thread owns a model (same seed => same
  // weights) but resolves plans through the one cache, concurrently.
  auto cache = std::make_shared<gnn::PlanCache>();
  constexpr int kThreads = 4;
  std::vector<std::vector<std::vector<gnn::ChainValues>>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(3);
        ChainNet model(cfg, rng);
        model.set_plan_cache(cache);
        for (const auto& g : graphs) {
          results[static_cast<std::size_t>(t)].push_back(
              model.forward_values(g));
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }

  EXPECT_EQ(cache->stats().compiles, 1u)
      << "concurrent first lookups must collapse to one compile";
  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      SCOPED_TRACE("thread " + std::to_string(t) + " graph " +
                   std::to_string(i));
      expect_values_equal(results[static_cast<std::size_t>(t)][i], serial[i]);
    }
  }
}

TEST(PlanCache, EvalServiceSharesOneCacheAcrossWorkers) {
  const auto system = medium_system(42);
  const auto placements = random_placements(system, 12, 51);
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;

  runtime::ThreadPool pool(2);
  runtime::EvalService service(
      pool,
      [cfg](support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
        struct Owning final : optim::PlacementEvaluator {
          explicit Owning(const ChainNetConfig& c)
              : rng(3), model(c, rng), eval(model) {}
          double total_throughput(const edge::EdgeSystem& s,
                                  const edge::Placement& p) override {
            record_evaluation();
            return eval.total_throughput(s, p);
          }
          void total_throughput_batch(const edge::EdgeSystem& s,
                                      std::span<const edge::Placement> ps,
                                      std::span<double> out) override {
            eval.total_throughput_batch(s, ps, out);
          }
          void set_plan_cache(std::shared_ptr<gnn::PlanCache> c) override {
            model.set_plan_cache(std::move(c));
          }
          Rng rng;
          ChainNet model;
          Surrogate eval;
        };
        return std::make_unique<Owning>(cfg);
      },
      99);

  service.evaluate_batch(system, placements);
  const auto stats = service.plan_cache()->stats();
  // 12 placements fan out as two width-6 chunks to two workers: one
  // compiles the width-6 plan, the other replays it from the shared cache.
  EXPECT_EQ(stats.compiles, 1u) << "workers must share one plan cache";
  EXPECT_GE(stats.hits, 1u);
}

TEST(PlanDispatch, InterpretEnvBypassesCompilationEntirely) {
  const auto system = medium_system(42);
  const auto placements = random_placements(system, 2, 11);
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  Rng rng(3);
  ChainNet model(cfg, rng);
  const auto graphs = build_graphs(model, system, placements);
  const auto ptrs = pointers(graphs);

  ASSERT_EQ(setenv("CHAINNET_INTERPRET", "1", 1), 0);
  const auto scalar_env = model.forward_values(graphs[0]);
  const auto batch_env = model.forward_values_batch(ptrs);
  EXPECT_EQ(model.plan_cache()->stats().compiles, 0u)
      << "CHAINNET_INTERPRET=1 must run the reference executor only";
  ASSERT_EQ(unsetenv("CHAINNET_INTERPRET"), 0);

  const auto scalar_plan = model.forward_values(graphs[0]);
  const auto batch_plan = model.forward_values_batch(ptrs);
  EXPECT_GE(model.plan_cache()->stats().compiles, 1u);
  expect_values_equal(scalar_env, scalar_plan);
  ASSERT_EQ(batch_env.size(), batch_plan.size());
  for (std::size_t b = 0; b < batch_env.size(); ++b) {
    expect_values_equal(batch_env[b], batch_plan[b]);
  }
}

TEST(PlanDump, ListsOpsAndScratchAccounting) {
  const auto system = medium_system(42);
  const auto placements = random_placements(system, 1, 11);
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  gnn::PlanShape shape;
  shape.hidden = cfg.hidden;
  shape.iterations = cfg.iterations;
  shape.attention_heads = cfg.attention_heads;
  shape.modified_outputs = cfg.modified_outputs;
  shape.attention_aggregation = cfg.attention_aggregation;
  const auto graph = edge::build_graph(system, placements[0],
                                       edge::FeatureMode::kModified);

  const auto scalar = gnn::compile_plan(graph, shape, 1);
  const std::string text = scalar->dump();
  EXPECT_NE(text.find("EncodeService"), std::string::npos) << text;
  EXPECT_NE(text.find("GruChainStep"), std::string::npos) << text;
  EXPECT_NE(text.find("Readout"), std::string::npos) << text;
  EXPECT_NE(text.find("scratch:"), std::string::npos) << text;

  const auto batched = gnn::compile_plan(graph, shape, 32);
  EXPECT_NE(batched->dump().find("BatchGruChainStep"), std::string::npos);
  EXPECT_NE(scalar->fingerprint, batched->fingerprint)
      << "width is part of the plan key";
}

/// Registry hot swap: new weights, same plans (the serve-flusher satellite).
TEST(PlanRegistry, HotSwapKeepsCompiledPlans) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "chainnet_plan_registry";
  fs::remove_all(dir);
  fs::create_directories(dir);

  core::ChainNetConfig config;
  config.hidden = 8;
  config.iterations = 1;
  const auto write_version = [&](std::uint32_t version, std::uint64_t seed) {
    Rng rng(seed);
    ChainNet model(config, rng);
    const auto params =
        dir / ("weights_v" + std::to_string(version) + ".bin");
    tensor::save_parameters(model, params.string());
    tensor::WeightsManifest manifest;
    manifest.version = version;
    manifest.params_path = params.filename().string();
    manifest.checksum = tensor::file_checksum(params.string());
    manifest.hidden = config.hidden;
    manifest.iterations = config.iterations;
    const auto path = dir / ("v" + std::to_string(version) + ".json");
    tensor::save_manifest(manifest, path.string());
    return path.string();
  };

  const auto system = medium_system(42);
  const auto placements = random_placements(system, 1, 11);
  serve::ModelRegistry registry(config, 1);

  registry.load(write_version(1, 11));
  const double v1 = registry.active()->surrogate(0).total_throughput(
      system, placements[0]);
  const auto after_v1 = registry.plan_cache()->stats();
  EXPECT_GE(after_v1.compiles, 1u);

  registry.load(write_version(2, 23));
  const double v2 = registry.active()->surrogate(0).total_throughput(
      system, placements[0]);
  const auto after_v2 = registry.plan_cache()->stats();
  EXPECT_NE(v1, v2) << "distinct weights must score differently";
  EXPECT_EQ(after_v2.compiles, after_v1.compiles)
      << "a weights hot swap must not recompile any plan";
  EXPECT_GT(after_v2.hits, after_v1.hits)
      << "the new version must replay the old version's plans";

  const auto stats = registry.stats_json();
  ASSERT_TRUE(stats.has("plan_cache"));
  EXPECT_EQ(stats.at("plan_cache").at("compiles").as_number(),
            static_cast<double>(after_v2.compiles));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace chainnet::core
