// R5 bad: a non-tensor file pulling in the SIMD bodies and calling an
// internal tile kernel, bypassing the fixed accumulation-order dispatch.
#include "tensor/kernels_simd.inc"

void run(const double* w, const double* x, double* y) {
  gemm_row_tile<4>(w, 0.0, x, y, 8, 4, 4);
}
