// R5 bad: the reduced-precision SIMD bodies and the f32 tile scratch are
// just as private to src/tensor/ as their f64 counterparts.
#include "tensor/kernels_simd_f32.inc"

void run_f32(const float* w, const float* x, float* y) {
  tile_scratch_f32().resize(64);
}
