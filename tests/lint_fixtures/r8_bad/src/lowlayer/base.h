// R8 bad: a lower layer reaching up — lowlayer may only include lowlayer.
#pragma once
#include "highlayer/top.h"

inline int r8bad_base() { return 1; }
