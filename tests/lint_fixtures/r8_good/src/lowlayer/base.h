// R8 good: lowlayer keeps to itself (sibling and system includes are free).
#pragma once
#include <vector>

inline int r8good_base() { return 1; }
