// R8 good: highlayer depending downward on lowlayer is the declared edge.
#pragma once
#include "lowlayer/base.h"

inline int r8good_top() { return r8good_base() + 1; }
