// Lexer regression: encoding-prefixed literals. A u8R"(...)" raw string
// used to lex as identifier `u8R` plus a plain string, leaking its body —
// the text below would trip R1/R6 if that regressed.
inline const char* lint_prefix_raw() {
  return u8R"(mu_.lock() and new int[2] live here)";
}

inline const wchar_t* lint_prefix_wide_raw() {
  return LR"(malloc(16) and mu_.unlock())";
}

inline int lint_prefix_plain() {
  const wchar_t* w = L"new int";
  const char* u = u8"mu_.lock()";
  const char32_t c = U'x';
  const char16_t d = u'y';
  return (w != nullptr) + (u != nullptr) + (c == U'x') + (d == u'y');
}
