// R9 waiver: the same inverted nesting as r9_deadlock, but the reversed
// acquisition is audited (the fixture pretends a try_lock protocol makes
// it safe) and waived on its holding acquisition.
#include <mutex>

class WaivedPair {
 public:
  void forward_path() {
    std::lock_guard<std::mutex> hold(outer_mu_);
    std::lock_guard<std::mutex> nested(inner_mu_);
    ++forward_;
  }
  void reverse_path() {
    // LINT:lock-order(reverse nesting is try_lock-guarded in the real
    // protocol; this fixture audits the one sanctioned inversion)
    std::lock_guard<std::mutex> hold(inner_mu_);
    std::lock_guard<std::mutex> nested(outer_mu_);
    ++reverse_;
  }

 private:
  std::mutex outer_mu_;
  std::mutex inner_mu_;
  int forward_ = 0;
  int reverse_ = 0;
};
