// R11 good: seeded draws, ordered containers, and no clock in sight.
#include <cstdint>
#include <map>

namespace r11fix {

class SeededSampler {
 public:
  explicit SeededSampler(std::uint64_t seed) : state_(seed) {}
  std::uint64_t draw() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }
  int fold() {
    int sum = 0;
    for (const auto& kv : weights_) sum += kv.second;
    return sum;
  }

 private:
  std::uint64_t state_;
  std::map<int, int> weights_;
};

}  // namespace r11fix
