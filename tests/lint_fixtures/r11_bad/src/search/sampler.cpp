// R11 bad: every way a deterministic module can leak nondeterminism —
// libc rand, hardware entropy, the wall clock, and hash-order iteration.
#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>

namespace r11fix {

class NoisySampler {
 public:
  int draw() { return rand() % 7; }
  unsigned reseed() {
    std::random_device entropy;
    return entropy();
  }
  long stamp() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
  }
  int fold() {
    int sum = 0;
    for (const auto& kv : weights_) sum += kv.second;
    return sum;
  }

 private:
  std::unordered_map<int, int> weights_;
};

}  // namespace r11fix
