// R6 good: ownership goes through make_unique; no naked allocation calls.
#include <memory>
#include <vector>

struct Pool {
  void grow() { slabs_.push_back(std::make_unique<double[]>(1024)); }
  std::vector<std::unique_ptr<double[]>> slabs_;
};
