#include "widget.h"

void Widget::add(int v) {
  std::lock_guard<std::mutex> lock(mu_);
  items_.push_back(v);
}

int Widget::size() const {
  return static_cast<int>(items_.size());
}
