// R2 bad: widget.cpp touches the annotated member with no guard in any
// enclosing lexical scope.
#pragma once
#include <mutex>
#include <vector>

struct Widget {
  void add(int v);
  int size() const;
  mutable std::mutex mu_;
  std::vector<int> items_;  // GUARDED_BY(mu_)
};
