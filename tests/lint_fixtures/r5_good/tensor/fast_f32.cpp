// R5 good: tensor/ files may include the f32 SIMD variant bodies and use
// the f32 tile scratch, same as the f64 tier.
#include "tensor/kernels_simd_f32.inc"

void run_f32(const float* w, const float* x, float* y) {
  tile_scratch_f32().resize(64);
}
