// R5 good: this file lives under a tensor/ directory, so it may include
// the SIMD variant bodies and call the internal tile kernels.
#include "tensor/kernels_simd.inc"

void run(const double* w, const double* x, double* y) {
  gemm_row_tile<4>(w, 0.0, x, y, 8, 4, 4);
}
