// R4 good: the frame binds to a named local, so its mark is released at
// end of scope, after the values are extracted.
void run(Tape& tape) {
  const Tape::Frame frame(tape);
  use(tape);
}
