// R6 bad: naked new and malloc outside the arena internals.
#include <cstdlib>

int* grow() {
  int* a = new int[4];
  void* b = std::malloc(16);
  (void)b;
  return a;
}
