// R7 waiver: parity harnesses legitimately run both executors and compare
// bit-for-bit; the waiver names that purpose.
bool parity(Model& model, const Graph& g) {
  const auto replayed = model.forward_values(g);
  // LINT:interpret(parity gate — compares plan replay against the
  // reference executor bit-for-bit)
  const auto reference = model.forward_values_interpreted(g);
  return replayed == reference;
}
