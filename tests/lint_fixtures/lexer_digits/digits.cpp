// Lexer regression: digit separators and exponent forms stay one number
// token each; the apostrophe must not open a character literal that would
// swallow the rest of the file (hiding the R6 finding-free code below).
inline long lint_digit_total() {
  const long big = 1'000'000;
  const double rate = 6.022'140'76e23;
  const unsigned mask = 0xFF'FF'00'00u;
  const int bits = 0b1010'1010;
  return big + static_cast<long>(rate > 0) + mask + bits;
}
