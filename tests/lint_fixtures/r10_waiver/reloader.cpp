// R10 waiver: file I/O under a lock, audited and waived with a reason at
// the blocking site.
#include <fstream>
#include <mutex>

class Reloader {
 public:
  void reload() {
    std::lock_guard<std::mutex> hold(reload_mu_);
    // LINT:blocking(startup-only path: nothing can contend reload_mu_
    // before the loader thread is spawned)
    std::ifstream in("table.bin");
    loaded_ = 1;
  }

 private:
  std::mutex reload_mu_;
  int loaded_ = 0;
};
