// R3 bad: memory_order_relaxed in a file without the LINT counters tag.
#include <atomic>

struct Flag {
  void set() { done_.store(true, std::memory_order_relaxed); }
  bool get() const { return done_.load(std::memory_order_acquire); }
  std::atomic<bool> done_{false};
};
