// R9 good: both paths take first_mu_ before second_mu_ — the acquisition
// order graph has edges but no cycle.
#include <mutex>

class OrderedPair {
 public:
  void fast_path() {
    std::lock_guard<std::mutex> hold(first_mu_);
    std::lock_guard<std::mutex> nested(second_mu_);
    ++fast_;
  }
  void slow_path() {
    std::lock_guard<std::mutex> hold(first_mu_);
    take_second();
  }

 private:
  void take_second() {
    std::lock_guard<std::mutex> hold(second_mu_);
    ++slow_;
  }
  std::mutex first_mu_;
  std::mutex second_mu_;
  int fast_ = 0;
  int slow_ = 0;
};
