// R11 waiver: a wall-clock read whose only consumer is a time budget that
// truncates the loop — audited and waived.
#include <chrono>

namespace r11fix {

inline double budget_seconds() {
  // LINT:nondet(fixture: the stamp feeds a budget that only truncates the
  // loop; every step stays seed-deterministic)
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace r11fix
