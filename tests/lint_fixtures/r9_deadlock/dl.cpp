// R9 deadlock: credit_side holds ledger_mu_ and (through bump_audit) takes
// audit_mu_; debit_side nests them the other way round. The report must
// carry the full acquisition witness path across the call.
#include <mutex>

class LedgerPair {
 public:
  void credit_side() {
    std::lock_guard<std::mutex> hold(ledger_mu_);
    bump_audit();
  }
  void debit_side() {
    std::lock_guard<std::mutex> hold(audit_mu_);
    std::lock_guard<std::mutex> nested(ledger_mu_);
    ++debits_;
  }

 private:
  void bump_audit() {
    std::lock_guard<std::mutex> hold(audit_mu_);
    ++audits_;
  }
  std::mutex ledger_mu_;
  std::mutex audit_mu_;
  int audits_ = 0;
  int debits_ = 0;
};
