// R7 good: the plan compiler and the reference executor (stems
// "plan_compiler" and "chainnet") are the sanctioned homes of the
// interpreted walk — no waiver needed there. Plan replay itself
// (forward_values / forward_values_batch) is always fine.
Plan compile(Model& model, const Graph& g) {
  const auto reference = model.forward_values_interpreted(g);
  return plan_from(reference);
}

double replay(Model& model, const Graph& g) {
  return model.forward_values(g).front().throughput;
}
