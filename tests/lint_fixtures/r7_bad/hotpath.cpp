// R7 bad: a production code path bypassing plan replay — both the public
// reference entry point and the internal interpreted walk are off-limits
// outside chainnet.{h,cpp} / plan_compiler.{h,cpp}.
double score(Model& model, const Graph& g) {
  const auto values = model.forward_values_interpreted(g);
  return values.front().throughput;
}

void score_batch(Impl& impl, Batch graphs) {
  impl.run_values_batch_interpreted(graphs);
}
