// R8 waiver: the spec carries `waive lowlayer -> highlayer <reason>`, and a
// second back-edge is waived in-source instead.
#pragma once
#include "highlayer/top.h"
// LINT:layer(fixture in-source waiver: this include is audited)
#include "highlayer/extra.h"

inline int r8waiver_base() { return 1; }
