// R1 waiver: the unlock-around-expensive-work pattern, audited and waived
// with an explicit reason (the chainnet flusher is the real instance).
#include <mutex>

struct Worker {
  void drain() {
    std::unique_lock<std::mutex> lock(mu_);
    const int popped = count_;
    // LINT:manual-lock(drops the lock around the expensive call so other
    // threads can keep queueing; only locals are touched until re-lock)
    lock.unlock();
    expensive(popped);
    lock.lock();  // LINT:manual-lock(re-acquire for the next pass)
    ++count_;
  }
  void expensive(int);
  std::mutex mu_;
  int count_ = 0;
};
