// R1 good: every acquisition goes through an RAII guard; condition-variable
// waits on a unique_lock are fine. Fixtures are linted, never compiled.
#include <condition_variable>
#include <mutex>

struct Worker {
  void push() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }
  void wait_ready() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ > 0; });
  }
  void both() {
    std::scoped_lock lock(mu_, other_);
    ++count_;
  }
  std::mutex mu_;
  std::mutex other_;
  std::condition_variable cv_;
  int count_ = 0;
};
