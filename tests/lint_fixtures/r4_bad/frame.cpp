// R4 bad: a Tape::Frame temporary releases its mark at the semicolon and
// scopes nothing; a heap-allocated tape escapes the thread-local regime.
void run(Tape& tape) {
  Tape::Frame(tape);
  use(tape);
}

Tape* make() {
  return new Tape();
}
