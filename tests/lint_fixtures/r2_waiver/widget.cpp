#include "widget.h"

void Widget::add(int v) {
  std::lock_guard<std::mutex> lock(mu_);
  items_.push_back(v);
  compact_locked();
}

void Widget::compact_locked() {
  // LINT:unguarded(caller holds mu_ — see the declaration in widget.h)
  items_.shrink_to_fit();
}
