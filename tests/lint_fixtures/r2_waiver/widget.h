// R2 waiver: a helper that requires the caller to hold the mutex states so
// in a waiver (the REQUIRES pattern; chainnet's connection reaper is the
// real instance).
#pragma once
#include <mutex>
#include <vector>

struct Widget {
  void add(int v);
  void compact_locked();  // callers hold mu_
  mutable std::mutex mu_;
  std::vector<int> items_;  // GUARDED_BY(mu_)
};
