// R1 bad: naked lock()/unlock() calls and a guard temporary that dies at
// the semicolon, none waived.
#include <mutex>

struct Worker {
  void push() {
    mu_.lock();
    ++count_;
    mu_.unlock();
  }
  void oops() {
    std::lock_guard<std::mutex>(mu_);
    ++count_;
  }
  std::mutex mu_;
  int count_ = 0;
};
