// R10 bad: file I/O directly under a lock, the same I/O reached through a
// call, and a condition wait on one lock while a second is still held.
#include <condition_variable>
#include <fstream>
#include <mutex>

class Spooler {
 public:
  void flush_all() {
    std::lock_guard<std::mutex> hold(spool_mu_);
    std::ifstream in("spool.txt");
    total_ += slurp_spool();
  }
  void drain() {
    std::unique_lock<std::mutex> pump(pump_mu_);
    std::lock_guard<std::mutex> hold(spool_mu_);
    ready_cv_.wait(pump);
  }

 private:
  int slurp_spool() {
    std::ifstream in("spool.dat");
    return 1;
  }
  std::mutex spool_mu_;
  std::mutex pump_mu_;
  std::condition_variable ready_cv_;
  int total_ = 0;
};
