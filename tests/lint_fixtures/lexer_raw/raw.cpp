// Lexer regression: raw-string bodies must not leak tokens into the rule
// engines — the text below would trip R1 and R6 if it were tokenized.
#include <string>

inline std::string lint_doc_text() {
  return R"(call mu_.lock() then new int[4] and malloc(8))";
}

inline std::string lint_doc_delim() {
  return R"doc(a ")" inside, plus mu_.unlock() and new char)doc";
}
