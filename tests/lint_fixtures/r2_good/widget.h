// R2 good: the annotated member is only touched under a guard on its
// mutex; annotations in this header bind in the same-stem widget.cpp.
#pragma once
#include <mutex>
#include <vector>

struct Widget {
  void add(int v);
  int size() const;
  mutable std::mutex mu_;
  std::vector<int> items_;  // GUARDED_BY(mu_)
};
