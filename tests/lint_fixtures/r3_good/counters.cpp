// R3 good: relaxed atomics are allowed here because the file is tagged.
// LINT:counters — pure monotonic statistics, nothing orders around them.
#include <atomic>

struct Stats {
  void hit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  std::atomic<unsigned long> hits_{0};
};
