// R10 good: the audited unlock/relock split (the serve-flusher idiom) is
// *understood*, not waived — the blocking call sits outside every guard
// segment, so no blocking-under-lock finding fires.
#include <mutex>

int evaluate_batch(int n);

class BatchPump {
 public:
  int pump_once() {
    std::unique_lock<std::mutex> hold(batch_mu_);
    const int batch = pending_;
    pending_ = 0;
    // LINT:manual-lock(drop the lock around the batched oracle call so
    // producers keep queueing; only locals are touched until re-lock)
    hold.unlock();
    const int score = evaluate_batch(batch);
    hold.lock();  // LINT:manual-lock(re-acquire to publish the score)
    last_score_ = score;
    return score;
  }

 private:
  std::mutex batch_mu_;
  int pending_ = 0;
  int last_score_ = 0;
};
