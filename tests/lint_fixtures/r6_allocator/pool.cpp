// R6 waiver: an arena implementation file owns raw storage by design.
// LINT:allocator — this fixture stands in for the tape arena internals.
#include <cstdlib>

struct Arena {
  void grow() { base_ = static_cast<unsigned char*>(std::malloc(4096)); }
  unsigned char* base_ = nullptr;
};
