#include "queueing/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "queueing/analytical.h"

namespace chainnet::queueing {
namespace {

using support::Deterministic;
using support::Exponential;

QnModel tandem(double lambda, std::vector<double> service_means,
               double capacity) {
  QnModel qn;
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(1.0 / lambda);
  for (std::size_t k = 0; k < service_means.size(); ++k) {
    qn.stations.push_back({"s" + std::to_string(k), capacity});
    chain.steps.emplace_back(static_cast<int>(k),
                             std::make_unique<Exponential>(service_means[k]),
                             1.0);
  }
  qn.chains.push_back(std::move(chain));
  return qn;
}

TEST(Validate, CatchesStructuralErrors) {
  QnModel qn;
  EXPECT_THROW(qn.validate(), std::invalid_argument);  // no stations
  qn.stations.push_back({"s0", 5.0});
  EXPECT_THROW(qn.validate(), std::invalid_argument);  // no chains
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(1.0);
  chain.steps.emplace_back(3, std::make_unique<Exponential>(1.0), 1.0);
  qn.chains.push_back(std::move(chain));
  EXPECT_THROW(qn.validate(), std::invalid_argument);  // bad station index
  qn.chains[0].steps[0].station = 0;
  EXPECT_NO_THROW(qn.validate());
}

TEST(ChainSpec, RatesAndServiceTotals) {
  ChainSpec chain;
  chain.interarrival = std::make_unique<Exponential>(2.0);
  chain.steps.emplace_back(0, std::make_unique<Deterministic>(0.3), 1.0);
  chain.steps.emplace_back(1, std::make_unique<Deterministic>(0.5), 1.0);
  EXPECT_DOUBLE_EQ(chain.arrival_rate(), 0.5);
  EXPECT_DOUBLE_EQ(chain.total_mean_service(), 0.8);
}

TEST(ChainSpec, CopyIsDeep) {
  ChainSpec a;
  a.interarrival = std::make_unique<Exponential>(2.0);
  a.steps.emplace_back(0, std::make_unique<Deterministic>(0.3), 1.0);
  ChainSpec b = a;
  EXPECT_NE(a.interarrival.get(), b.interarrival.get());
  EXPECT_NE(a.steps[0].service.get(), b.steps[0].service.get());
  EXPECT_DOUBLE_EQ(b.steps[0].service->mean(), 0.3);
}

TEST(Simulate, DeterministicForSameSeed) {
  const auto qn = tandem(0.8, {0.5, 0.7}, 10.0);
  SimConfig config;
  config.horizon = 5000.0;
  config.seed = 42;
  const auto a = simulate(qn, config);
  const auto b = simulate(qn, config);
  EXPECT_EQ(a.chains[0].completions, b.chains[0].completions);
  EXPECT_EQ(a.chains[0].losses, b.chains[0].losses);
  EXPECT_DOUBLE_EQ(a.chains[0].mean_latency, b.chains[0].mean_latency);
}

TEST(Simulate, DifferentSeedsDiffer) {
  const auto qn = tandem(0.8, {0.5, 0.7}, 10.0);
  SimConfig config;
  config.horizon = 5000.0;
  config.seed = 1;
  const auto a = simulate(qn, config);
  config.seed = 2;
  const auto b = simulate(qn, config);
  EXPECT_NE(a.chains[0].completions, b.chains[0].completions);
}

TEST(Simulate, StableTandemLosesNothing) {
  // Huge buffers + utilization < 1 => throughput == arrival rate.
  const auto qn = tandem(0.5, {0.4, 0.6, 0.3}, 100000.0);
  SimConfig config;
  config.horizon = 200000.0;
  config.seed = 3;
  const auto sim = simulate(qn, config);
  EXPECT_EQ(sim.chains[0].losses, 0u);
  EXPECT_NEAR(sim.chains[0].throughput, 0.5, 0.01);
}

TEST(Simulate, StableTandemLatencyMatchesJacksonSum) {
  // With unconstrained buffers, each station behaves as an independent
  // M/M/1 (Jackson), so the end-to-end latency is the sum of per-station
  // sojourn times 1/(mu_i - lambda).
  const double lambda = 0.5;
  const auto qn = tandem(lambda, {0.4, 0.8}, 100000.0);
  SimConfig config;
  config.horizon = 400000.0;
  config.seed = 11;
  const auto sim = simulate(qn, config);
  const double expected = 1.0 / (1.0 / 0.4 - lambda) +
                          1.0 / (1.0 / 0.8 - lambda);
  EXPECT_NEAR(sim.chains[0].mean_latency, expected, 0.03 * expected);
}

TEST(Simulate, ThroughputNonIncreasingAlongChain) {
  // Count completions at the last station <= admissions at the first: in a
  // lossy tandem, each stage can only lose jobs (paper §V-C2).
  const auto qn = tandem(2.0, {0.8, 0.9}, 3.0);
  SimConfig config;
  config.horizon = 50000.0;
  config.seed = 5;
  const auto sim = simulate(qn, config);
  EXPECT_LE(sim.chains[0].throughput,
            2.0 + 0.1);  // cannot exceed arrival rate
  EXPECT_GT(sim.chains[0].losses, 0u);
  EXPECT_LE(sim.stations[1].admitted, sim.stations[0].admitted);
}

TEST(Simulate, ArrivalAccountingConsistent) {
  const auto qn = tandem(1.5, {0.9}, 2.0);
  SimConfig config;
  config.horizon = 50000.0;
  config.seed = 9;
  const auto sim = simulate(qn, config);
  // Every measured arrival is either admitted at station 0 or lost there.
  EXPECT_EQ(sim.chains[0].arrivals,
            sim.stations[0].admitted + sim.stations[0].rejected);
}

TEST(Simulate, MultiChainSharedStationLossIsFelt) {
  // Two chains share a station; the combined load overflows its buffer.
  QnModel qn;
  qn.stations.push_back({"shared", 4.0});
  for (int i = 0; i < 2; ++i) {
    ChainSpec chain;
    chain.name = "c" + std::to_string(i);
    chain.interarrival = std::make_unique<Exponential>(1.0);
    chain.steps.emplace_back(0, std::make_unique<Exponential>(0.9), 1.0);
    qn.chains.push_back(std::move(chain));
  }
  SimConfig config;
  config.horizon = 100000.0;
  config.seed = 17;
  const auto sim = simulate(qn, config);
  // Symmetric chains suffer comparable loss.
  EXPECT_GT(sim.chains[0].loss_probability, 0.1);
  EXPECT_NEAR(sim.chains[0].loss_probability, sim.chains[1].loss_probability,
              0.05);
  // Combined throughput cannot exceed the station's service rate.
  EXPECT_LE(sim.total_throughput(), 1.0 / 0.9 + 0.05);
}

TEST(Simulate, HeavyFragmentBlockedByMemory) {
  // A job needing 5 units on a 4-unit station is always rejected.
  QnModel qn;
  qn.stations.push_back({"tiny", 4.0});
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(1.0);
  chain.steps.emplace_back(0, std::make_unique<Exponential>(0.1), 5.0);
  qn.chains.push_back(std::move(chain));
  SimConfig config;
  config.horizon = 5000.0;
  config.seed = 23;
  const auto sim = simulate(qn, config);
  EXPECT_EQ(sim.chains[0].completions, 0u);
  EXPECT_NEAR(sim.chains[0].loss_probability, 1.0, 1e-12);
}

TEST(Simulate, DeterministicServiceD1K) {
  // M/D/1 with big buffer: mean jobs = rho + rho^2/(2(1-rho))
  // (Pollaczek-Khinchine with zero service variance).
  const double lambda = 0.5, d = 1.0;
  QnModel qn;
  qn.stations.push_back({"s0", 100000.0});
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(1.0 / lambda);
  chain.steps.emplace_back(0, std::make_unique<Deterministic>(d), 1.0);
  qn.chains.push_back(std::move(chain));
  SimConfig config;
  config.horizon = 400000.0;
  config.seed = 29;
  const auto sim = simulate(qn, config);
  const double rho = lambda * d;
  const double expected = rho + rho * rho / (2.0 * (1.0 - rho));
  EXPECT_NEAR(sim.stations[0].mean_jobs, expected, 0.03 * expected);
}

TEST(Simulate, WarmupReducesTransientBias) {
  // A nearly saturated queue started empty underestimates occupancy
  // without warmup relative to a warmed-up run.
  const auto qn = tandem(0.95, {1.0}, 50.0);
  SimConfig cold;
  cold.horizon = 3000.0;
  cold.warmup_fraction = 0.0;
  cold.seed = 31;
  SimConfig warm = cold;
  warm.warmup_fraction = 0.5;
  const double cold_jobs = simulate(qn, cold).stations[0].mean_jobs;
  const double warm_jobs = simulate(qn, warm).stations[0].mean_jobs;
  EXPECT_GT(warm_jobs, cold_jobs);
}

TEST(Simulate, RejectsBadConfig) {
  const auto qn = tandem(1.0, {0.5}, 5.0);
  SimConfig config;
  config.horizon = -1.0;
  EXPECT_THROW(simulate(qn, config), std::invalid_argument);
  config.horizon = 10.0;
  config.warmup_fraction = 1.0;
  EXPECT_THROW(simulate(qn, config), std::invalid_argument);
}

TEST(Simulate, LossProbabilityHelper) {
  const auto qn = tandem(2.0, {1.0}, 2.0);
  SimConfig config;
  config.horizon = 50000.0;
  config.seed = 37;
  const auto sim = simulate(qn, config);
  const double pi = sim.loss_probability(qn.total_arrival_rate());
  EXPECT_GT(pi, 0.4);
  EXPECT_LT(pi, 0.7);
}

TEST(Simulate, LossesByStepSumToTotal) {
  // Two-stage tandem with tight buffers on both stations.
  const auto qn = tandem(2.0, {0.8, 0.9}, 3.0);
  SimConfig config;
  config.horizon = 50000.0;
  config.seed = 61;
  const auto r = simulate(qn, config);
  ASSERT_EQ(r.chains[0].losses_by_step.size(), 2u);
  EXPECT_EQ(r.chains[0].losses_by_step[0] + r.chains[0].losses_by_step[1],
            r.chains[0].losses);
  // Both steps should lose some jobs in this regime.
  EXPECT_GT(r.chains[0].losses_by_step[0], 0u);
  EXPECT_GT(r.chains[0].losses_by_step[1], 0u);
}

TEST(Simulate, FirstStepDominatesLossUnderFrontOverload) {
  // The first station is the bottleneck; nearly all losses happen there.
  const auto qn = tandem(3.0, {0.9, 0.1}, 4.0);
  SimConfig config;
  config.horizon = 50000.0;
  config.seed = 67;
  const auto r = simulate(qn, config);
  EXPECT_GT(r.chains[0].losses_by_step[0],
            10 * std::max<std::uint64_t>(1, r.chains[0].losses_by_step[1]));
}

TEST(Simulate, ConfidenceIntervalCoversTruth) {
  // Stable M/M/1-ish tandem: throughput == lambda; the 95% CI should
  // usually cover it and must shrink with a longer horizon.
  const auto qn = tandem(0.5, {0.4}, 100000.0);
  SimConfig short_run;
  short_run.horizon = 20000.0;
  short_run.seed = 51;
  SimConfig long_run = short_run;
  long_run.horizon = 200000.0;
  const auto a = simulate(qn, short_run);
  const auto b = simulate(qn, long_run);
  EXPECT_GT(a.chains[0].throughput_ci, 0.0);
  EXPECT_LT(b.chains[0].throughput_ci, a.chains[0].throughput_ci);
  EXPECT_NEAR(b.chains[0].throughput, 0.5,
              3.0 * b.chains[0].throughput_ci);
}

TEST(Simulate, CiDisabledWhenBatchesZero) {
  const auto qn = tandem(0.5, {0.4}, 100000.0);
  SimConfig cfg;
  cfg.horizon = 5000.0;
  cfg.ci_batches = 0;
  const auto r = simulate(qn, cfg);
  EXPECT_DOUBLE_EQ(r.chains[0].throughput_ci, 0.0);
}

TEST(SimulateReplicated, AveragesAcrossSeeds) {
  const auto qn = tandem(0.8, {0.7}, 5.0);
  SimConfig config;
  config.horizon = 20000.0;
  config.seed = 41;
  const auto one = simulate(qn, config);
  const auto avg = simulate_replicated(qn, config, 5);
  // The replicated average should be close to a single long run and carry
  // the summed counters.
  EXPECT_NEAR(avg.chains[0].throughput, one.chains[0].throughput, 0.05);
  EXPECT_GT(avg.chains[0].completions, one.chains[0].completions);
  EXPECT_THROW(simulate_replicated(qn, config, 0), std::invalid_argument);
}

}  // namespace
}  // namespace chainnet::queueing
