#include "edge/qn_mapping.h"

#include <gtest/gtest.h>

#include "queueing/simulator.h"
#include "test_util.h"

namespace chainnet::edge {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;

TEST(QnMapping, StationsAreUsedDevices) {
  const auto qn = build_qn(small_system(), small_placement());
  ASSERT_EQ(qn.stations.size(), 4u);
  EXPECT_EQ(qn.stations[0].name, "d0");
  EXPECT_DOUBLE_EQ(qn.stations[2].memory_capacity, 40.0);
}

TEST(QnMapping, SkipsUnusedDevices) {
  Placement p(std::vector<std::vector<int>>{{0, 1, 2}, {1, 0}});
  const auto qn = build_qn(small_system(), p);
  EXPECT_EQ(qn.stations.size(), 3u);  // device 3 unused
}

TEST(QnMapping, ChainRoutesFollowPlacement) {
  const auto qn = build_qn(small_system(), small_placement());
  ASSERT_EQ(qn.chains.size(), 2u);
  ASSERT_EQ(qn.chains[0].steps.size(), 3u);
  EXPECT_EQ(qn.chains[0].steps[0].station, 0);
  EXPECT_EQ(qn.chains[0].steps[1].station, 1);
  EXPECT_EQ(qn.chains[0].steps[2].station, 2);
  EXPECT_EQ(qn.chains[1].steps[0].station, 1);  // shared device
  EXPECT_EQ(qn.chains[1].steps[1].station, 3);
}

TEST(QnMapping, ServiceMeansAreProcessingTimes) {
  const auto qn = build_qn(small_system(), small_placement());
  // Fragment (0,2): r = 0.3 on device 2 with R = 2 -> 0.15.
  EXPECT_NEAR(qn.chains[0].steps[2].service->mean(), 0.15, 1e-12);
  // Fragment (1,1): r = 0.9 on device 3 with R = 0.5 -> 1.8.
  EXPECT_NEAR(qn.chains[1].steps[1].service->mean(), 1.8, 1e-12);
  // Exponential by default (SCV 1).
  EXPECT_NEAR(qn.chains[0].steps[0].service->scv(), 1.0, 1e-12);
}

TEST(QnMapping, DeterministicServiceOption) {
  const auto qn = build_qn(small_system(), small_placement(),
                           ServiceModel::kDeterministic);
  EXPECT_NEAR(qn.chains[0].steps[0].service->scv(), 0.0, 1e-12);
  EXPECT_NEAR(qn.chains[0].steps[0].service->mean(), 0.5, 1e-12);
}

TEST(QnMapping, ArrivalProcessMatchesChainRate) {
  const auto qn = build_qn(small_system(), small_placement());
  EXPECT_NEAR(qn.chains[0].arrival_rate(), 0.8, 1e-12);
  EXPECT_NEAR(qn.chains[1].arrival_rate(), 0.4, 1e-12);
}

TEST(QnMapping, MemoryDemandsCarriedThrough) {
  auto sys = small_system();
  sys.chains[0].fragments[1].memory_demand = 7.0;
  const auto qn = build_qn(sys, small_placement());
  EXPECT_DOUBLE_EQ(qn.chains[0].steps[1].memory_demand, 7.0);
}

TEST(QnMapping, ResultSimulates) {
  const auto qn = build_qn(small_system(), small_placement());
  queueing::SimConfig config;
  config.horizon = 20000.0;
  config.seed = 3;
  const auto sim = queueing::simulate(qn, config);
  // The small system is lightly loaded relative to capacity 50 buffers.
  EXPECT_NEAR(sim.chains[0].throughput, 0.8, 0.05);
  EXPECT_NEAR(sim.chains[1].throughput, 0.4, 0.05);
}

TEST(QnMapping, RejectsInvalidInputs) {
  Placement incomplete(small_system());
  EXPECT_THROW(build_qn(small_system(), incomplete), std::invalid_argument);
}

}  // namespace
}  // namespace chainnet::edge
