#include "queueing/approximation.h"

#include <gtest/gtest.h>

#include <memory>

#include "queueing/analytical.h"
#include "queueing/simulator.h"

namespace chainnet::queueing {
namespace {

using support::Exponential;

QnModel single_station(double lambda, double mu, int K) {
  QnModel qn;
  qn.stations.push_back({"s0", static_cast<double>(K)});
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(1.0 / lambda);
  chain.steps.emplace_back(0, std::make_unique<Exponential>(1.0 / mu), 1.0);
  qn.chains.push_back(std::move(chain));
  return qn;
}

TEST(Approximation, ExactForSingleMm1k) {
  // One station, one chain: the decomposition IS the M/M/1/K formula.
  for (const auto& [lambda, mu, K] :
       {std::tuple{0.8, 1.0, 5}, {2.0, 1.0, 3}, {0.5, 2.0, 10}}) {
    const auto qn = single_station(lambda, mu, K);
    const auto approx = approximate(qn);
    const auto exact = mm1k(lambda, mu, K);
    EXPECT_TRUE(approx.converged);
    EXPECT_NEAR(approx.chains[0].throughput, exact.throughput, 1e-6);
    EXPECT_NEAR(approx.chains[0].loss_probability, exact.loss_probability,
                1e-6);
    EXPECT_NEAR(approx.chains[0].mean_latency, exact.mean_response, 1e-6);
  }
}

TEST(Approximation, RejectsBadConfig) {
  const auto qn = single_station(1.0, 1.0, 3);
  ApproxConfig cfg;
  cfg.max_iterations = 0;
  EXPECT_THROW(approximate(qn, cfg), std::invalid_argument);
  cfg = ApproxConfig{};
  cfg.relaxation = 0.0;
  EXPECT_THROW(approximate(qn, cfg), std::invalid_argument);
}

QnModel tandem(double lambda, std::vector<double> service_means,
               double capacity) {
  QnModel qn;
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(1.0 / lambda);
  for (std::size_t k = 0; k < service_means.size(); ++k) {
    qn.stations.push_back({"s" + std::to_string(k), capacity});
    chain.steps.emplace_back(static_cast<int>(k),
                             std::make_unique<Exponential>(service_means[k]),
                             1.0);
  }
  qn.chains.push_back(std::move(chain));
  return qn;
}

TEST(Approximation, NearExactForLightlyLoadedTandem) {
  // Low utilization, big buffers: negligible loss, latency close to the
  // Jackson sum — the regime where decomposition is known to be good.
  const auto qn = tandem(0.3, {0.5, 0.8}, 200.0);
  const auto approx = approximate(qn);
  SimConfig sim;
  sim.horizon = 300000.0;
  sim.seed = 5;
  const auto truth = simulate(qn, sim);
  EXPECT_NEAR(approx.chains[0].throughput, truth.chains[0].throughput,
              0.02 * truth.chains[0].throughput);
  EXPECT_NEAR(approx.chains[0].mean_latency, truth.chains[0].mean_latency,
              0.08 * truth.chains[0].mean_latency);
}

TEST(Approximation, ReasonableForOverloadedTandem) {
  // Heavy overload: the first station's loss dominates and the
  // decomposition should land within ~15% of simulated throughput.
  const auto qn = tandem(3.0, {0.9, 0.5}, 5.0);
  const auto approx = approximate(qn);
  SimConfig sim;
  sim.horizon = 100000.0;
  sim.seed = 7;
  const auto truth = simulate(qn, sim);
  EXPECT_NEAR(approx.chains[0].throughput, truth.chains[0].throughput,
              0.15 * truth.chains[0].throughput);
  EXPECT_GT(approx.chains[0].loss_probability, 0.4);
}

TEST(Approximation, ThroughputNeverExceedsArrivalRate) {
  const auto qn = tandem(2.0, {0.6, 0.6, 0.6}, 4.0);
  const auto approx = approximate(qn);
  EXPECT_LE(approx.chains[0].throughput, 2.0 + 1e-9);
  EXPECT_GE(approx.chains[0].throughput, 0.0);
}

TEST(Approximation, SharedStationCouplesChains) {
  // Two chains share one station; raising chain 1's load must reduce
  // chain 0's approximate throughput.
  const auto build = [](double lambda1) {
    QnModel qn;
    qn.stations.push_back({"shared", 5.0});
    for (int i = 0; i < 2; ++i) {
      ChainSpec chain;
      chain.name = "c" + std::to_string(i);
      chain.interarrival = std::make_unique<Exponential>(
          i == 0 ? 1.0 : 1.0 / lambda1);
      chain.steps.emplace_back(0, std::make_unique<Exponential>(0.5), 1.0);
      qn.chains.push_back(std::move(chain));
    }
    return qn;
  };
  const double light = approximate(build(0.2)).chains[0].throughput;
  const double heavy = approximate(build(3.0)).chains[0].throughput;
  EXPECT_LT(heavy, light);
}

TEST(Approximation, BlockingIsPerStationAndBounded) {
  const auto qn = tandem(5.0, {0.9, 0.9}, 3.0);
  const auto approx = approximate(qn);
  ASSERT_EQ(approx.blocking.size(), 2u);
  for (double b : approx.blocking) {
    EXPECT_GE(b, 0.0);
    EXPECT_LT(b, 1.0);
  }
  // Upstream station sees the raw overload; downstream sees thinned flow.
  EXPECT_GT(approx.blocking[0], approx.blocking[1]);
}

}  // namespace
}  // namespace chainnet::queueing
