#include "support/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace chainnet::support {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, combined;
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {10.0, 20.0, 30.0, 40.0};
  for (double x : xs) {
    a.add(x);
    combined.add(x);
  }
  for (double y : ys) {
    b.add(y);
    combined.add(y);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(TimeWeightedStats, PiecewiseConstantAverage) {
  TimeWeightedStats tw;
  tw.update(0.0, 2.0);   // value 2 holds on [0, 4)
  tw.update(4.0, 6.0);   // value 6 holds on [4, 10)
  // Average over [0, 10] = (2*4 + 6*6) / 10 = 4.4.
  EXPECT_NEAR(tw.average(10.0), 4.4, 1e-12);
}

TEST(TimeWeightedStats, NoUpdatesIsZero) {
  TimeWeightedStats tw;
  EXPECT_DOUBLE_EQ(tw.average(10.0), 0.0);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.99), 3.0);
}

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.125), 15.0);
}

TEST(Percentile, UnsortedInputIsSorted) {
  const std::vector<double> v = {50.0, 10.0, 40.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 30.0);
}

TEST(Percentile, ClampsQuantile) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.5), 2.0);
}

TEST(BoxSummary, FiveNumbers) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto b = box_summary(v);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.q1, 2.0);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 4.0);
  EXPECT_DOUBLE_EQ(b.max, 5.0);
  EXPECT_EQ(b.count, 5u);
}

TEST(BoxSummary, Empty) {
  const auto b = box_summary({});
  EXPECT_EQ(b.count, 0u);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  const std::vector<double> v = {1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 3.0);
}

}  // namespace
}  // namespace chainnet::support
