// Contracts of the src/search/ population optimizers:
//  * SA anchoring: every optimizer with population 1 replays serial
//    optim::anneal bit-for-bit (same stream, same trajectory, same
//    evaluation counts, same counters), and run_trials on the SA adapter
//    reproduces optim::anneal_trials;
//  * thread-count determinism: a fixed seed yields identical results on a
//    1-worker and a 4-worker evaluation service;
//  * batch discipline: the optimizers are batch-fed (>= 90% of placements
//    arrive through width>=2 evaluate_batch calls) and a whole run
//    compiles at most two execution plans through the shared plan cache;
//  * search sanity: objectives improve, best-so-far is monotone, final
//    placements validate, and the acceptance/exchange/resample counters
//    are populated.
#include "search/optimizer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/chainnet.h"
#include "core/surrogate.h"
#include "edge/problem.h"
#include "gnn/plan.h"
#include "optim/annealing.h"
#include "optim/evaluator.h"
#include "optim/initial.h"
#include "queueing/simulator.h"
#include "runtime/eval_service.h"
#include "runtime/thread_pool.h"
#include "search/moves.h"
#include "support/rng.h"
#include "test_util.h"

namespace chainnet::search {
namespace {

using chainnet::testing::small_system;
using optim::SaConfig;
using optim::SaResult;
using support::Rng;

/// Fixed-seed simulation oracle: placement-pure, so batched / parallel
/// evaluation reproduces serial evaluation bit-for-bit.
runtime::EvalService::EvaluatorFactory sim_factory() {
  queueing::SimConfig cfg;
  cfg.horizon = 400.0;
  cfg.seed = 9;
  return [cfg](Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
    return std::make_unique<optim::SimulationEvaluator>(cfg);
  };
}

SearchConfig quick_config(int population, int steps = 25) {
  SearchConfig cfg;
  cfg.sa.max_steps = steps;
  cfg.sa.seed = 11;
  cfg.population = population;
  return cfg;
}

const std::vector<Algo> kPopulationAlgos = {Algo::kPt, Algo::kPopAnneal,
                                            Algo::kBestOfB};

void expect_same_run(const SaResult& a, const SaResult& b,
                     const std::string& label) {
  EXPECT_DOUBLE_EQ(a.best_objective, b.best_objective) << label;
  EXPECT_EQ(a.best.assignment(), b.best.assignment()) << label;
  EXPECT_EQ(a.evaluations, b.evaluations) << label;
  EXPECT_EQ(a.counters.proposals, b.counters.proposals) << label;
  EXPECT_EQ(a.counters.proposal_failures, b.counters.proposal_failures)
      << label;
  EXPECT_EQ(a.counters.accepts, b.counters.accepts) << label;
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size()) << label;
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_EQ(a.trajectory[i].step, b.trajectory[i].step) << label;
    EXPECT_DOUBLE_EQ(a.trajectory[i].current, b.trajectory[i].current)
        << label << " point " << i;
    EXPECT_DOUBLE_EQ(a.trajectory[i].best, b.trajectory[i].best)
        << label << " point " << i;
    EXPECT_EQ(a.trajectory[i].evals, b.trajectory[i].evals)
        << label << " point " << i;
  }
}

TEST(SearchMoves, AllKindsProduceValidNeighbors) {
  const auto sys = small_system();
  auto current = optim::initial_placement(sys);
  Rng rng(3);
  const SaConfig cfg;
  int produced = 0;
  for (int i = 0; i < 60; ++i) {
    const MoveKind kind = move_kind_for_slot(i);
    edge::Placement next;
    if (!propose_kind(kind, sys, current, rng, cfg, next)) continue;
    ++produced;
    EXPECT_NO_THROW(next.validate(sys)) << "move kind " << i % 3;
    if (kind != MoveKind::kDoubleRelocate) {
      // Single-hop kinds always change the assignment; a double relocation
      // may legally compose a move with its own inverse.
      EXPECT_NE(next.assignment(), current.assignment());
    }
    current = next;
  }
  EXPECT_GT(produced, 30);
}

TEST(SearchMoves, SlotZeroIsThePaperRelocation) {
  // propose_kind(kRelocate) must consume the stream exactly like
  // optim::propose_move — the bit-compat anchor of the B = 1 reduction.
  const auto sys = small_system();
  const auto initial = optim::initial_placement(sys);
  const SaConfig cfg;
  Rng a(17), b(17);
  edge::Placement via_kind, via_optim;
  for (int i = 0; i < 20; ++i) {
    const bool ok_kind =
        propose_kind(MoveKind::kRelocate, sys, initial, a, cfg, via_kind);
    const bool ok_optim = propose_move(sys, initial, b, cfg, via_optim);
    ASSERT_EQ(ok_kind, ok_optim);
    if (ok_kind) {
      EXPECT_EQ(via_kind.assignment(), via_optim.assignment());
    }
    EXPECT_EQ(a(), b()) << "streams diverged at iteration " << i;
  }
}

TEST(SearchOptimizer, PopulationOfOneMatchesSerialAnnealBitForBit) {
  const auto sys = small_system();
  const auto initial = optim::initial_placement(sys);
  const auto cfg = quick_config(1, 30);

  SaConfig sa = cfg.sa;
  const auto serial_eval = sim_factory()(Rng(0));
  const auto serial = optim::anneal(sys, initial, *serial_eval, sa);

  for (const Algo algo : kPopulationAlgos) {
    runtime::ThreadPool pool(2);
    runtime::EvalService service(pool, sim_factory(), 1);
    const auto optimizer = make_optimizer(algo, service, cfg);
    const auto result = optimizer->run(sys, initial, sa.seed);
    expect_same_run(result, serial, std::string(algo_name(algo)));
    // Population-only mechanisms must be inert at population 1.
    EXPECT_EQ(result.counters.exchange_attempts, 0u);
    EXPECT_EQ(result.counters.resample_events, 0u);
  }
}

TEST(SearchOptimizer, DeterministicAcrossThreadCounts) {
  const auto sys = small_system();
  const auto initial = optim::initial_placement(sys);
  const auto cfg = quick_config(8, 25);

  for (const Algo algo : kPopulationAlgos) {
    runtime::ThreadPool pool1(1);
    runtime::EvalService service1(pool1, sim_factory(), 1);
    const auto a =
        make_optimizer(algo, service1, cfg)->run(sys, initial, 11);

    runtime::ThreadPool pool4(4);
    runtime::EvalService service4(pool4, sim_factory(), 1);
    const auto b =
        make_optimizer(algo, service4, cfg)->run(sys, initial, 11);

    expect_same_run(a, b, std::string(algo_name(algo)));
  }
}

TEST(SearchOptimizer, ImprovesValidatesAndRecordsMonotoneBest) {
  const auto sys = small_system();
  const auto initial = optim::initial_placement(sys);
  const auto cfg = quick_config(6, 40);

  for (const Algo algo : kPopulationAlgos) {
    runtime::ThreadPool pool(2);
    runtime::EvalService service(pool, sim_factory(), 1);
    const auto result =
        make_optimizer(algo, service, cfg)->run(sys, initial, 5);
    const std::string label(algo_name(algo));
    EXPECT_NO_THROW(result.best.validate(sys)) << label;
    ASSERT_EQ(result.trajectory.size(), 41u) << label;
    EXPECT_GE(result.best_objective, result.trajectory.front().best)
        << label;
    for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
      EXPECT_GE(result.trajectory[i].best, result.trajectory[i - 1].best)
          << label;
      EXPECT_GE(result.trajectory[i].evals, result.trajectory[i - 1].evals)
          << label;
    }
    EXPECT_GT(result.counters.proposals, 0u) << label;
    EXPECT_GE(result.counters.proposals, result.counters.accepts) << label;
    EXPECT_EQ(result.trials, 1) << label;
  }
}

TEST(SearchOptimizer, ParallelTemperingCountsExchanges) {
  const auto sys = small_system();
  const auto initial = optim::initial_placement(sys);
  auto cfg = quick_config(4, 30);
  cfg.exchange_interval = 1;
  runtime::ThreadPool pool(2);
  runtime::EvalService service(pool, sim_factory(), 1);
  const auto result =
      make_optimizer(Algo::kPt, service, cfg)->run(sys, initial, 7);
  // 30 sweeps x alternating 2/1 adjacent pairs of a 4-chain ladder.
  EXPECT_EQ(result.counters.exchange_attempts, 45u);
  EXPECT_GE(result.counters.exchange_attempts,
            result.counters.exchange_accepts);
  EXPECT_EQ(result.counters.resample_events, 0u);
}

TEST(SearchOptimizer, ExchangeIntervalZeroDisablesExchanges) {
  const auto sys = small_system();
  const auto initial = optim::initial_placement(sys);
  auto cfg = quick_config(4, 20);
  cfg.exchange_interval = 0;
  runtime::ThreadPool pool(2);
  runtime::EvalService service(pool, sim_factory(), 1);
  const auto result =
      make_optimizer(Algo::kPt, service, cfg)->run(sys, initial, 7);
  EXPECT_EQ(result.counters.exchange_attempts, 0u);
}

TEST(SearchOptimizer, PopulationAnnealingCountsResamples) {
  const auto sys = small_system();
  const auto initial = optim::initial_placement(sys);
  auto cfg = quick_config(4, 30);
  cfg.resample_interval = 5;
  runtime::ThreadPool pool(2);
  runtime::EvalService service(pool, sim_factory(), 1);
  const auto result =
      make_optimizer(Algo::kPopAnneal, service, cfg)->run(sys, initial, 7);
  EXPECT_EQ(result.counters.resample_events, 6u);  // steps 5,10,...,30
  EXPECT_EQ(result.counters.exchange_attempts, 0u);
}

TEST(SearchOptimizer, OptimizersAreBatchFed) {
  // >= 90% of all placements must reach the oracle through width>=2
  // batches (the whole point of batch-native search). With padding the
  // optimizers are in fact 100% batched.
  const auto sys = small_system();
  const auto initial = optim::initial_placement(sys);
  const auto cfg = quick_config(16, 25);

  for (const Algo algo : kPopulationAlgos) {
    runtime::ThreadPool pool(4);
    runtime::EvalService service(pool, sim_factory(), 1);
    (void)make_optimizer(algo, service, cfg)->run(sys, initial, 3);
    const auto stats = service.stats();
    EXPECT_GE(stats.batched_fraction(), 0.9)
        << algo_name(algo) << ": " << stats.batched_placements
        << " batched vs " << stats.single_placements << " single";
    EXPECT_GT(stats.batch_calls, 0u) << algo_name(algo);
  }
}

TEST(SearchOptimizer, WholeRunCompilesAtMostTwoPlans) {
  // Surrogate oracle on a shared plan cache: constant batch width means
  // the service's chunking produces at most two distinct sub-batch widths,
  // so a whole run compiles at most two plans (R7 plan discipline).
  const auto params = edge::PlacementProblemParams::paper(16);
  Rng gen(42);
  const auto sys = edge::generate_placement_problem(params, gen);
  const auto initial = optim::initial_placement(sys);
  const auto cfg = quick_config(8, 10);

  for (const Algo algo : kPopulationAlgos) {
    runtime::ThreadPool pool(3);
    runtime::EvalService service(
        pool,
        [](Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
          struct Owning final : optim::PlacementEvaluator {
            Owning() : rng(3), model(config(), rng), eval(model) {}
            static core::ChainNetConfig config() {
              core::ChainNetConfig cfg;
              cfg.hidden = 8;
              cfg.iterations = 2;
              return cfg;
            }
            double total_throughput(const edge::EdgeSystem& s,
                                    const edge::Placement& p) override {
              record_evaluation();
              return eval.total_throughput(s, p);
            }
            void total_throughput_batch(
                const edge::EdgeSystem& s,
                std::span<const edge::Placement> ps,
                std::span<double> out) override {
              for (std::size_t i = 0; i < ps.size(); ++i) {
                record_evaluation();
              }
              eval.total_throughput_batch(s, ps, out);
            }
            void set_plan_cache(
                std::shared_ptr<gnn::PlanCache> c) override {
              model.set_plan_cache(std::move(c));
            }
            Rng rng;
            core::ChainNet model;
            core::Surrogate eval;
          };
          return std::make_unique<Owning>();
        },
        99);
    (void)make_optimizer(algo, service, cfg)->run(sys, initial, 3);
    const auto stats = service.plan_cache()->stats();
    EXPECT_LE(stats.compiles, 2u) << algo_name(algo);
    EXPECT_GT(stats.hits, 0u) << algo_name(algo);
  }
}

TEST(SearchDrivers, RunTrialsOnSaAdapterMatchesAnnealTrials) {
  const auto sys = small_system();
  const auto initial = optim::initial_placement(sys);
  const auto cfg = quick_config(1, 20);

  const auto serial_eval = sim_factory()(Rng(0));
  const auto reference =
      optim::anneal_trials(sys, initial, *serial_eval, cfg.sa, 4);

  runtime::ThreadPool pool(2);
  runtime::EvalService service(pool, sim_factory(), 1);
  const auto optimizer = make_optimizer(Algo::kSa, service, cfg);
  const auto result = run_trials(*optimizer, sys, initial, cfg.sa.seed, 4);

  expect_same_run(result, reference, "sa-adapter");
  EXPECT_EQ(result.trials, reference.trials);
}

TEST(SearchDrivers, RunTrialsConcatenatesPopulationTrials) {
  const auto sys = small_system();
  const auto initial = optim::initial_placement(sys);
  const auto cfg = quick_config(4, 15);
  runtime::ThreadPool pool(2);
  runtime::EvalService service(pool, sim_factory(), 1);
  const auto optimizer = make_optimizer(Algo::kPt, service, cfg);
  const auto result = run_trials(*optimizer, sys, initial, 11, 3);
  EXPECT_EQ(result.trials, 3);
  // 3 trials x (1 initial point + 15 steps), minus 2 deduped step-0 points.
  EXPECT_EQ(result.trajectory.size(), 3u * 16u - 2u);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_GE(result.trajectory[i].best, result.trajectory[i - 1].best);
    EXPECT_GE(result.trajectory[i].step, result.trajectory[i - 1].step);
    EXPECT_GE(result.trajectory[i].evals, result.trajectory[i - 1].evals);
  }
  EXPECT_THROW(run_trials(*optimizer, sys, initial, 11, 0),
               std::invalid_argument);
}

TEST(SearchConfigApi, ParseAlgoRoundTripsAndRejectsGarbage) {
  for (const Algo algo :
       {Algo::kSa, Algo::kPt, Algo::kPopAnneal, Algo::kBestOfB}) {
    Algo parsed;
    ASSERT_TRUE(parse_algo(algo_name(algo), parsed));
    EXPECT_EQ(parsed, algo);
  }
  Algo parsed = Algo::kSa;
  EXPECT_FALSE(parse_algo("tempering", parsed));
  EXPECT_FALSE(parse_algo("", parsed));
  EXPECT_EQ(parsed, Algo::kSa);
}

TEST(SearchConfigApi, RejectsNonsensicalConfigs) {
  runtime::ThreadPool pool(1);
  runtime::EvalService service(pool, sim_factory(), 1);
  auto cfg = quick_config(0);
  EXPECT_THROW(make_optimizer(Algo::kPt, service, cfg),
               std::invalid_argument);
  EXPECT_THROW(make_optimizer(Algo::kBestOfB, service, cfg),
               std::invalid_argument);
  cfg.population = 4;
  cfg.ladder_ratio = 0.5;
  EXPECT_THROW(make_optimizer(Algo::kPt, service, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace chainnet::search
