// Bit-exactness contract of the f32 inference kernels (the reduced-
// precision tier of DESIGN.md §15), mirroring kernels_test one lane width
// up: the row-blocked f32 gemv must agree with the single-accumulator f32
// gemv_naive on every element, and every f32 gemm batch column must agree
// with an f32 gemv over that column — across shapes that hit every tile
// width, every row-block remainder, and the packed-panel path of the
// dispatched ISA variant. EXPECT_EQ on floats on purpose: within one ISA
// tier the f32 kernels promise identical accumulation chains.
//
// Also pins the tier-selection plumbing the kernels hang off: DType
// parsing (unknown spellings throw, listing the accepted values),
// CHAINNET_DTYPE / CHAINNET_KERNEL_ISA env validation, and the
// round-to-nearest-even semantics of the emulated-bf16 weight rounding.
//
// tests/CMakeLists.txt registers this binary once per forceable ISA tier
// (auto-detect, baseline, avx2) via the CHAINNET_KERNEL_ISA environment —
// the dispatch table resolves once per process, so per-tier coverage needs
// per-process runs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/rng.h"
#include "tensor/dtype.h"
#include "tensor/kernels.h"

namespace chainnet::tensor {
namespace {

std::vector<float> random_values(std::size_t n, support::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  return v;
}

void expect_gemv_matches_naive(std::size_t rows, std::size_t cols,
                               bool with_bias) {
  support::Rng rng(11 * rows + cols + (with_bias ? 1 : 0));
  const auto w = random_values(rows * cols, rng);
  const auto bias = random_values(rows, rng);
  const auto x = random_values(cols, rng);
  std::vector<float> blocked(rows, -1.0f), naive(rows, -2.0f);
  const float* b = with_bias ? bias.data() : nullptr;
  kernels::gemv(w.data(), b, x.data(), blocked.data(), rows, cols);
  kernels::gemv_naive(w.data(), b, x.data(), naive.data(), rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_EQ(blocked[r], naive[r]) << "row " << r << " of " << rows << "x"
                                    << cols << " bias=" << with_bias;
  }
}

TEST(KernelsF32, BlockedGemvMatchesNaiveBitExact) {
  for (const std::size_t rows : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 192u}) {
    for (const std::size_t cols : {1u, 2u, 3u, 17u, 64u, 128u}) {
      expect_gemv_matches_naive(rows, cols, true);
      expect_gemv_matches_naive(rows, cols, false);
    }
  }
}

void expect_gemm_matches_gemv(std::size_t rows, std::size_t cols,
                              std::size_t n, bool with_bias) {
  support::Rng rng(101 * rows + 13 * cols + n + (with_bias ? 1 : 0));
  const auto w = random_values(rows * cols, rng);
  const auto bias = random_values(rows, rng);
  const auto x = random_values(cols * n, rng);  // row-major [cols x n] panel
  std::vector<float> batched(rows * n, -1.0f);
  const float* b = with_bias ? bias.data() : nullptr;
  kernels::gemm(w.data(), b, x.data(), batched.data(), rows, cols, n);
  std::vector<float> xj(cols), yj(rows);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t c = 0; c < cols; ++c) xj[c] = x[c * n + j];
    kernels::gemv(w.data(), b, xj.data(), yj.data(), rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(batched[r * n + j], yj[r])
          << "element (" << r << "," << j << ") of " << rows << "x" << cols
          << " gemm with n=" << n << " bias=" << with_bias;
    }
  }
}

TEST(KernelsF32, GemmColumnsMatchGemvBitExact) {
  // n sweeps every f32 tile width (64/32/16/8/4 plus scalar remainders)
  // with remainders on both sides of each boundary; n > 64 additionally
  // exercises the packed-panel path. Rows sweep the 2- and 4-row block
  // remainders the row-blocked tiles introduce.
  for (const std::size_t n :
       {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u, 33u, 48u,
        63u, 64u, 65u, 89u, 128u}) {
    expect_gemm_matches_gemv(6, 33, n, true);
    expect_gemm_matches_gemv(6, 33, n, false);
  }
  for (const std::size_t rows : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 9u}) {
    expect_gemm_matches_gemv(rows, 19, 32, true);
    expect_gemm_matches_gemv(rows, 19, 16, true);
  }
  // Shapes from the real model: stacked GRU gate panels and attention
  // projections at paper width, with a wide batch panel.
  expect_gemm_matches_gemv(192, 128, 32, true);
  expect_gemm_matches_gemv(192, 64, 32, true);
  expect_gemm_matches_gemv(128, 128, 89, true);
  expect_gemm_matches_gemv(1, 1, 3, true);
}

TEST(KernelsF32, GemmWithSingleColumnIsGemv) {
  expect_gemm_matches_gemv(9, 17, 1, true);
  expect_gemm_matches_gemv(9, 17, 1, false);
}

TEST(KernelsF32, ReportsKnownIsa) {
  const std::string isa_name = kernels::isa();
  EXPECT_TRUE(isa_name == "baseline" || isa_name == "avx2" ||
              isa_name == "avx512")
      << isa_name;
}

TEST(KernelsIsaEnv, ValidateAcceptsKnownTiersAndRejectsJunk) {
  EXPECT_NO_THROW(kernels::validate_isa_name("baseline"));
  EXPECT_NO_THROW(kernels::validate_isa_name("avx2"));
  EXPECT_NO_THROW(kernels::validate_isa_name("avx512"));
  for (const char* bad : {"", "AVX2", "avx-512", "sse2", "native"}) {
    try {
      kernels::validate_isa_name(bad);
      FAIL() << "accepted \"" << bad << "\"";
    } catch (const std::invalid_argument& e) {
      // The error must teach the accepted spellings.
      EXPECT_NE(std::string(e.what()).find("baseline"), std::string::npos)
          << e.what();
    }
  }
}

TEST(DTypeParse, AcceptsKnownTiers) {
  DType d = DType::kBf16;
  EXPECT_TRUE(parse_dtype("f64", d));
  EXPECT_EQ(d, DType::kF64);
  EXPECT_TRUE(parse_dtype("f32", d));
  EXPECT_EQ(d, DType::kF32);
  EXPECT_TRUE(parse_dtype("bf16", d));
  EXPECT_EQ(d, DType::kBf16);
}

TEST(DTypeParse, RejectsUnknownSpellings) {
  DType d = DType::kF64;
  for (const char* bad : {"", "F32", "fp32", "double", "float", "f16"}) {
    EXPECT_FALSE(parse_dtype(bad, d)) << bad;
    try {
      parse_dtype_or_throw(bad);
      FAIL() << "accepted \"" << bad << "\"";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("f64, f32, bf16"),
                std::string::npos)
          << e.what();
    }
  }
  EXPECT_EQ(d, DType::kF64);  // failed parses never write the out-param
}

TEST(DTypeParse, NamesAndWidthsRoundTrip) {
  EXPECT_STREQ(dtype_name(DType::kF64), "f64");
  EXPECT_STREQ(dtype_name(DType::kF32), "f32");
  EXPECT_STREQ(dtype_name(DType::kBf16), "bf16");
  EXPECT_EQ(dtype_element_bytes(DType::kF64), sizeof(double));
  EXPECT_EQ(dtype_element_bytes(DType::kF32), sizeof(float));
  // bf16 is emulated in f32 storage: it saves accuracy bits, not bytes.
  EXPECT_EQ(dtype_element_bytes(DType::kBf16), sizeof(float));
}

TEST(DTypeEnv, FallbackUnsetValidAndInvalid) {
  ::unsetenv("CHAINNET_DTYPE");
  EXPECT_EQ(dtype_from_env(DType::kF64), DType::kF64);
  EXPECT_EQ(dtype_from_env(DType::kF32), DType::kF32);
  ::setenv("CHAINNET_DTYPE", "bf16", 1);
  EXPECT_EQ(dtype_from_env(DType::kF64), DType::kBf16);
  ::setenv("CHAINNET_DTYPE", "fp64", 1);
  EXPECT_THROW(dtype_from_env(DType::kF64), std::invalid_argument);
  ::unsetenv("CHAINNET_DTYPE");
}

TEST(Bf16Round, RoundsToNearestEven) {
  // 1 + 2^-7 is the last representable bf16 mantissa step; 1 + 2^-8 sits
  // exactly halfway below it (kept lsb 0 -> rounds down), 1 + 2^-7 + 2^-8
  // exactly halfway above it (kept lsb 1 -> rounds up to the even value).
  EXPECT_EQ(bf16_round(1.0f), 1.0f);
  EXPECT_EQ(bf16_round(1.0078125f), 1.0078125f);
  EXPECT_EQ(bf16_round(1.00390625f), 1.0f);
  EXPECT_EQ(bf16_round(1.01171875f), 1.015625f);
  EXPECT_EQ(bf16_round(-1.00390625f), -1.0f);
  EXPECT_EQ(bf16_round(-1.01171875f), -1.015625f);
  EXPECT_EQ(bf16_round(0.0f), 0.0f);
}

TEST(Bf16Round, SpecialsFollowIeee) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16_round(inf), inf);
  EXPECT_EQ(bf16_round(-inf), -inf);
  EXPECT_TRUE(std::isnan(bf16_round(std::nanf(""))));
  // Max finite float rounds up past the bf16 exponent range -> infinity.
  EXPECT_EQ(bf16_round(std::numeric_limits<float>::max()), inf);
  // Max finite bf16 value survives unchanged.
  EXPECT_EQ(bf16_round(3.3895314e38f), 3.3895314e38f);
}

}  // namespace
}  // namespace chainnet::tensor
