// Determinism and correctness of the concurrent evaluation runtime wired
// into the SA drivers: a 1-thread anneal_trials_parallel must reproduce the
// serial anneal_trials bit-for-bit, and batch evaluation must agree with
// direct evaluation for every oracle that is a pure function of the
// placement.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "optim/annealing.h"
#include "optim/evaluator.h"
#include "optim/initial.h"
#include "queueing/simulator.h"
#include "runtime/eval_cache.h"
#include "runtime/eval_service.h"
#include "runtime/thread_pool.h"
#include "test_util.h"

namespace chainnet::optim {
namespace {

using chainnet::testing::small_system;

/// Value-deterministic toy oracle (same objective as annealing_test's).
class ToyEvaluator final : public PlacementEvaluator {
 public:
  double total_throughput(const edge::EdgeSystem& system,
                          const edge::Placement& placement) override {
    record_evaluation();
    double total = 0.0;
    for (int i = 0; i < system.num_chains(); ++i) {
      for (int j = 0; j < system.chains[i].length(); ++j) {
        total += 1.0 / system.processing_time(i, j, placement.device_of(i, j));
      }
    }
    return total;
  }
};

runtime::EvalService::EvaluatorFactory toy_factory() {
  return [](support::Rng) -> std::unique_ptr<PlacementEvaluator> {
    return std::make_unique<ToyEvaluator>();
  };
}

/// Fixed-seed simulation oracle: the objective depends on the placement
/// only, so results are identical no matter which worker scores it.
runtime::EvalService::EvaluatorFactory sim_factory() {
  queueing::SimConfig cfg;
  cfg.horizon = 400.0;
  cfg.seed = 9;
  return [cfg](support::Rng) -> std::unique_ptr<PlacementEvaluator> {
    return std::make_unique<SimulationEvaluator>(cfg);
  };
}

SaConfig quick_sa(int steps = 25) {
  SaConfig cfg;
  cfg.max_steps = steps;
  cfg.seed = 11;
  return cfg;
}

TEST(EvalService, BatchMatchesDirectEvaluation) {
  const auto sys = small_system();
  auto current = initial_placement(sys);
  std::vector<edge::Placement> batch;
  support::Rng rng(3);
  const SaConfig cfg;
  for (int i = 0; i < 16; ++i) {
    edge::Placement next;
    ASSERT_TRUE(propose_move(sys, current, rng, cfg, next));
    current = next;
    batch.push_back(current);
  }
  runtime::ThreadPool pool(4);
  runtime::EvalService service(pool, sim_factory(), 1);
  const auto parallel = service.evaluate_batch(sys, batch);
  const auto direct = sim_factory()(support::Rng(0));
  ASSERT_EQ(parallel.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel[i], direct->total_throughput(sys, batch[i]));
  }
  EXPECT_EQ(service.oracle_evaluations(), batch.size());
}

TEST(EvalService, EmptyBatchIsANoOp) {
  runtime::ThreadPool pool(2);
  runtime::EvalService service(pool, toy_factory(), 1);
  EXPECT_TRUE(service.evaluate_batch(small_system(), {}).empty());
  EXPECT_EQ(service.oracle_evaluations(), 0u);
}

TEST(AnnealTrialsParallel, OneThreadMatchesSerialBitForBit) {
  const auto sys = small_system();
  const auto initial = initial_placement(sys);
  const auto cfg = quick_sa();

  // Serial reference with an evaluator identical to worker 0's.
  const auto serial_eval =
      sim_factory()(runtime::EvalService::worker_stream(cfg.seed, 0));
  const auto serial = anneal_trials(sys, initial, *serial_eval, cfg, 4);

  runtime::ThreadPool pool(1);
  runtime::EvalService service(pool, sim_factory(), cfg.seed);
  const auto parallel = anneal_trials_parallel(sys, initial, service, cfg, 4);

  EXPECT_DOUBLE_EQ(parallel.best_objective, serial.best_objective);
  EXPECT_EQ(parallel.best.assignment(), serial.best.assignment());
  EXPECT_EQ(parallel.evaluations, serial.evaluations);
  EXPECT_EQ(parallel.trials, serial.trials);
  ASSERT_EQ(parallel.trajectory.size(), serial.trajectory.size());
  for (std::size_t i = 0; i < parallel.trajectory.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel.trajectory[i].best, serial.trajectory[i].best);
    EXPECT_DOUBLE_EQ(parallel.trajectory[i].current,
                     serial.trajectory[i].current);
    EXPECT_EQ(parallel.trajectory[i].step, serial.trajectory[i].step);
  }
}

TEST(AnnealTrialsParallel, MultiThreadMatchesSerialForPureOracles) {
  // With a placement-pure oracle every trial computes identical numbers on
  // any worker, and the merge order is fixed, so even a 4-thread run is an
  // exact reproduction of the serial search.
  const auto sys = small_system();
  const auto initial = initial_placement(sys);
  const auto cfg = quick_sa();
  const auto serial_eval = sim_factory()(support::Rng(0));
  const auto serial = anneal_trials(sys, initial, *serial_eval, cfg, 6);

  runtime::ThreadPool pool(4);
  runtime::EvalService service(pool, sim_factory(), cfg.seed);
  const auto parallel = anneal_trials_parallel(sys, initial, service, cfg, 6);

  EXPECT_DOUBLE_EQ(parallel.best_objective, serial.best_objective);
  EXPECT_EQ(parallel.best.assignment(), serial.best.assignment());
  EXPECT_EQ(parallel.evaluations, serial.evaluations);
}

TEST(AnnealTrialsParallel, RejectsNonPositiveTrials) {
  const auto sys = small_system();
  const auto initial = initial_placement(sys);
  runtime::ThreadPool pool(1);
  runtime::EvalService service(pool, toy_factory(), 1);
  EXPECT_THROW(anneal_trials_parallel(sys, initial, service, quick_sa(), 0),
               std::invalid_argument);
}

TEST(AnnealBatched, ImprovesObjectiveAndRecordsTrajectory) {
  const auto sys = small_system();
  const auto initial = initial_placement(sys);
  runtime::ThreadPool pool(2);
  runtime::EvalService service(pool, toy_factory(), 1);
  ToyEvaluator reference;
  const double initial_obj = reference.total_throughput(sys, initial);
  const auto cfg = quick_sa(40);
  const auto result = anneal_batched(sys, initial, service, cfg, 4);
  EXPECT_GE(result.best_objective, initial_obj);
  EXPECT_NO_THROW(result.best.validate(sys));
  ASSERT_EQ(result.trajectory.size(), 41u);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_GE(result.trajectory[i].best, result.trajectory[i - 1].best);
  }
  // Up to pool_size evaluations per step plus the initial one.
  EXPECT_GE(result.evaluations, 1u);
  EXPECT_LE(result.evaluations, 1u + 40u * 4u);
  EXPECT_GE(result.wall_seconds, 0.0);
}

TEST(AnnealBatched, DeterministicAcrossThreadCounts) {
  const auto sys = small_system();
  const auto initial = initial_placement(sys);
  const auto cfg = quick_sa(30);
  runtime::ThreadPool pool1(1);
  runtime::EvalService service1(pool1, sim_factory(), cfg.seed);
  const auto a = anneal_batched(sys, initial, service1, cfg, 3);
  runtime::ThreadPool pool4(4);
  runtime::EvalService service4(pool4, sim_factory(), cfg.seed);
  const auto b = anneal_batched(sys, initial, service4, cfg, 3);
  EXPECT_DOUBLE_EQ(a.best_objective, b.best_objective);
  EXPECT_EQ(a.best.assignment(), b.best.assignment());
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(AnnealBatched, PoolSizeOneMatchesPlainAnneal) {
  // One proposal per step, scored remotely: exactly anneal()'s decision
  // sequence for the same seed and a placement-pure oracle.
  const auto sys = small_system();
  const auto initial = initial_placement(sys);
  const auto cfg = quick_sa(30);
  const auto serial_eval = sim_factory()(support::Rng(0));
  const auto serial = anneal(sys, initial, *serial_eval, cfg);
  runtime::ThreadPool pool(2);
  runtime::EvalService service(pool, sim_factory(), cfg.seed);
  const auto batched = anneal_batched(sys, initial, service, cfg, 1);
  EXPECT_DOUBLE_EQ(batched.best_objective, serial.best_objective);
  EXPECT_EQ(batched.best.assignment(), serial.best.assignment());
}

TEST(CachedEvaluatorParallel, SharedCacheAbsorbsRepeatedBatches) {
  const auto sys = small_system();
  auto current = initial_placement(sys);
  std::vector<edge::Placement> batch;
  support::Rng rng(5);
  const SaConfig cfg;
  for (int i = 0; i < 12; ++i) {
    edge::Placement next;
    ASSERT_TRUE(propose_move(sys, current, rng, cfg, next));
    current = next;
    batch.push_back(current);
  }
  auto cache = std::make_shared<runtime::EvalCache>();
  auto inner = sim_factory();
  runtime::EvalService::EvaluatorFactory cached =
      [inner, cache](support::Rng stream)
      -> std::unique_ptr<PlacementEvaluator> {
    return std::make_unique<runtime::CachedEvaluator>(inner(stream), cache);
  };
  runtime::ThreadPool pool(4);
  runtime::EvalService service(pool, cached, 1);
  const auto first = service.evaluate_batch(sys, batch);
  const auto second = service.evaluate_batch(sys, batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i], second[i]);
  }
  const auto stats = cache->stats();
  // The second pass is served from the cache entirely (the first may also
  // hit when the walk revisits states).
  EXPECT_GE(stats.hits, batch.size());
  // Oracle evaluations = misses only, never more than distinct placements
  // of the first pass.
  EXPECT_LE(service.oracle_evaluations(), batch.size());
}

}  // namespace
}  // namespace chainnet::optim
