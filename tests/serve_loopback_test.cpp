// End-to-end serving-layer tests over real loopback sockets: concurrent
// clients, bit-identical results vs direct EvalService calls, typed
// admission rejects, typed deadline drops, live stats, and clean shutdown.
// This suite runs under ThreadSanitizer (scripts/check_tsan.sh): the accept
// loop, reader threads, flusher, and metrics counters are all exercised.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "edge/placement.h"
#include "edge/problem.h"
#include "optim/evaluator.h"
#include "runtime/eval_cache.h"
#include "runtime/eval_service.h"
#include "runtime/thread_pool.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "support/rng.h"
#include "test_util.h"

namespace chainnet::serve {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;

runtime::EvalService::EvaluatorFactory approx_factory() {
  return [](support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
    return std::make_unique<optim::ApproximationEvaluator>();
  };
}

std::vector<edge::Placement> placement_pool(const edge::EdgeSystem& system,
                                            int count, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<edge::Placement> pool;
  pool.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    pool.push_back(edge::random_placement(system, rng));
  }
  return pool;
}

TEST(ServeLoopback, ConcurrentClientsMatchDirectEvaluationBitForBit) {
  const auto system = small_system();
  runtime::ThreadPool pool(4);
  runtime::EvalService service(pool, approx_factory());

  ServerConfig config;
  config.max_batch = 8;
  config.flush_window_ms = 2.0;
  Server server(service, config);
  server.add_system("default", system);
  server.start();
  ASSERT_GT(server.port(), 0);

  const auto placements = placement_pool(system, 32, 99);
  // Reference values straight from an identical evaluator, no server.
  optim::ApproximationEvaluator reference;
  std::vector<double> expected;
  expected.reserve(placements.size());
  for (const auto& p : placements) {
    expected.push_back(reference.total_throughput(system, p));
  }

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 48;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client("127.0.0.1", server.port());
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const std::size_t i =
            static_cast<std::size_t>(c * 31 + q * 7) % placements.size();
        const double got = client.evaluate_one(placements[i]);
        if (got != expected[i]) ++mismatches;  // bit-identical, not near
      }
      // Multi-placement requests preserve order within the response.
      const auto batch = client.evaluate({placements.data(), 5});
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i] != expected[i]) ++mismatches;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Live stats reflect the traffic: every query answered, batching active.
  Client client("127.0.0.1", server.port());
  const auto stats = client.stats();
  const double evals = stats.at("eval_requests").as_number();
  EXPECT_GE(evals, kClients * kQueriesPerClient + kClients);
  EXPECT_DOUBLE_EQ(stats.at("placements_evaluated").as_number(),
                   kClients * (kQueriesPerClient + 5));
  EXPECT_GT(stats.at("batches").as_number(), 0.0);
  EXPECT_GT(stats.at("service_latency").at("count").as_number(), 0.0);
  EXPECT_FALSE(stats.at("batch_size_histogram").as_array().empty());
  EXPECT_DOUBLE_EQ(stats.at("rejects_overload").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(stats.at("deadline_drops").as_number(), 0.0);

  server.stop();
}

TEST(ServeLoopback, FullQueueFastRejectsWithTypedError) {
  const auto system = small_system();
  runtime::ThreadPool pool(2);
  runtime::EvalService service(pool, approx_factory());

  ServerConfig config;
  config.max_batch = 64;          // never fills from this test's traffic
  config.flush_window_ms = 300.0; // holds the queue long enough to observe
  config.max_pending = 4;
  Server server(service, config);
  server.add_system("default", system);
  server.start();

  const auto placements = placement_pool(system, 4, 5);
  std::thread filler([&] {
    Client client("127.0.0.1", server.port());
    // Occupies the whole admission budget until the window flushes.
    const auto values =
        client.evaluate({placements.data(), placements.size()});
    EXPECT_EQ(values.size(), placements.size());
  });

  Client prober("127.0.0.1", server.port());
  // Wait until the filler's items are actually pending.
  for (int spin = 0; spin < 200; ++spin) {
    if (prober.stats().at("queue_depth").as_number() >= 4.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(prober.stats().at("queue_depth").as_number(), 4.0);

  bool rejected = false;
  try {
    prober.evaluate_one(placements[0]);
  } catch (const ServeError& e) {
    rejected = true;
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
  }
  EXPECT_TRUE(rejected);
  EXPECT_GE(server.metrics().rejects_overload.value(), 1u);

  filler.join();  // the admitted request still completes after the flush
  server.stop();
}

TEST(ServeLoopback, ExpiredDeadlineDropsBeforeEvaluation) {
  const auto system = small_system();
  runtime::ThreadPool pool(2);
  runtime::EvalService service(pool, approx_factory());

  ServerConfig config;
  config.flush_window_ms = 20.0;
  Server server(service, config);
  server.add_system("default", system);
  server.start();

  Client client("127.0.0.1", server.port());
  const auto placement = small_placement();
  bool dropped = false;
  try {
    // Expires within nanoseconds of admission — long before the flush
    // window elapses, so the flusher must drop it unevaluated.
    client.evaluate_one(placement, "default", 1e-4);
  } catch (const ServeError& e) {
    dropped = true;
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }
  EXPECT_TRUE(dropped);
  EXPECT_GE(server.metrics().deadline_drops.value(), 1u);
  EXPECT_EQ(server.metrics().placements_evaluated.value(), 0u);

  // A generous deadline is not dropped.
  EXPECT_GT(client.evaluate_one(placement, "default", 60000.0), 0.0);
  server.stop();
}

TEST(ServeLoopback, TypedErrorsForBadInput) {
  const auto system = small_system();
  runtime::ThreadPool pool(2);
  runtime::EvalService service(pool, approx_factory());
  Server server(service, {});
  server.add_system("default", system);
  server.start();

  Client client("127.0.0.1", server.port());
  const auto placement = small_placement();

  try {
    client.evaluate_one(placement, "no-such-system");
    FAIL() << "expected unknown_system";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownSystem);
  }

  // Device index out of range -> bad_request (validated before queueing).
  try {
    client.evaluate_one(
        edge::Placement(std::vector<std::vector<int>>{{0, 99}, {1, 2}}));
    FAIL() << "expected bad_request";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }

  // Garbage JSON -> parse_error.
  try {
    client.call(support::Json::parse("\"not an object\""));
    FAIL() << "expected bad_request for non-object";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
  EXPECT_GE(server.metrics().bad_requests.value(), 2u);

  // load_system makes a new system addressable on the fly.
  client.load_system("second", system);
  EXPECT_GT(client.evaluate_one(placement, "second"), 0.0);
  server.stop();
}

TEST(ServeLoopback, HostileEvalFieldsGetTypedErrorsNotACrash) {
  const auto system = small_system();
  runtime::ThreadPool pool(2);
  runtime::EvalService service(pool, approx_factory());
  Server server(service, {});
  server.add_system("default", system);
  server.start();

  Client client("127.0.0.1", server.port());
  const auto placement = small_placement();

  // Wrong-typed or out-of-range fields must come back as bad_request —
  // an uncaught exception in a reader thread would kill the process.
  const char* hostile[] = {
      R"({"type":"eval","system":1})",
      R"({"type":"eval","placements":[[[0]]],"deadline_ms":"soon"})",
      R"({"type":"eval","placements":"nope"})",
      R"({"type":"eval","placements":[[[1e300]]]})",  // overflows int
      R"({"type":"eval","placements":[[[-1e300]]]})",
      R"({"type":"eval","placements":[[[0.5]]]})",  // non-integral index
  };
  for (const char* payload : hostile) {
    try {
      client.call(support::Json::parse(payload));
      FAIL() << "expected bad_request for " << payload;
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kBadRequest) << payload;
    }
  }

  // The server survived all of it, and an absurd deadline saturates
  // instead of overflowing into the past and expiring the request.
  client.ping();
  EXPECT_GT(client.evaluate_one(placement, "default", 1e18), 0.0);
  EXPECT_EQ(server.metrics().deadline_drops.value(), 0u);
  server.stop();
}

TEST(ServeLoopback, ClientShutdownRequestUnblocksWaitAndDrains) {
  const auto system = small_system();
  runtime::ThreadPool pool(2);
  runtime::EvalService service(pool, approx_factory());
  Server server(service, {});
  server.add_system("default", system);
  server.start();
  const int port = server.port();

  {
    Client client("127.0.0.1", port);
    client.ping();
    EXPECT_GT(client.evaluate_one(small_placement()), 0.0);
    EXPECT_FALSE(server.wait_for(std::chrono::milliseconds(1)));
    client.request_shutdown();
  }
  server.wait();  // returns because a client asked for shutdown
  server.stop();

  // Fully stopped: new connections are refused.
  EXPECT_THROW(Client("127.0.0.1", port), std::runtime_error);
  // Idempotent.
  server.stop();
}

TEST(ServeLoopback, StopDrainsInFlightWork) {
  const auto system = small_system();
  runtime::ThreadPool pool(4);
  runtime::EvalService service(pool, approx_factory());
  ServerConfig config;
  config.flush_window_ms = 50.0;  // requests sit pending when stop() lands
  config.max_batch = 64;
  Server server(service, config);
  server.add_system("default", system);
  server.start();

  const auto placements = placement_pool(system, 8, 17);
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      Client client("127.0.0.1", server.port());
      const auto values =
          client.evaluate({placements.data(), placements.size()});
      if (values.size() == placements.size()) ++answered;
    });
  }
  // Let the requests reach the pending queue, then stop underneath them:
  // every admitted request must still be answered (drained, not dropped).
  while (server.metrics().placements_received.value() <
         4 * placements.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();
  for (auto& t : clients) t.join();
  EXPECT_EQ(answered.load(), 4);
  EXPECT_EQ(server.metrics().placements_evaluated.value(),
            4 * placements.size());
}

}  // namespace
}  // namespace chainnet::serve
