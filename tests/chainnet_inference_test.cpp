// Equivalence tests for ChainNet's inference-only path: forward_values()
// must reproduce the autodiff forward() to floating-point roundoff on every
// configuration (attention / mean aggregation, both output modes), across
// random systems including large Type-II graphs.
#include <gtest/gtest.h>

#include "core/chainnet.h"
#include "edge/graph.h"
#include "edge/problem.h"
#include "support/rng.h"
#include "test_util.h"

namespace chainnet::core {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;
using support::Rng;

void expect_paths_match(ChainNet& model, const edge::PlacementGraph& g,
                        double tol = 1e-12) {
  const auto slow = model.forward(g);
  const auto fast = model.forward_values(g);
  ASSERT_EQ(slow.size(), fast.size());
  for (std::size_t i = 0; i < slow.size(); ++i) {
    ASSERT_TRUE(fast[i].has_throughput);
    ASSERT_TRUE(fast[i].has_latency);
    EXPECT_NEAR(slow[i].throughput.item(), fast[i].throughput, tol);
    EXPECT_NEAR(slow[i].latency.item(), fast[i].latency, tol);
  }
}

TEST(ChainNetFastInference, MatchesAutodiffOnSmallSystem) {
  Rng rng(3);
  ChainNetConfig cfg;
  cfg.hidden = 16;
  cfg.iterations = 3;
  ChainNet model(cfg, rng);
  const auto g = edge::build_graph(small_system(), small_placement(),
                                   model.feature_mode());
  expect_paths_match(model, g);
}

TEST(ChainNetFastInference, MatchesOnMeanAggregationVariant) {
  Rng rng(5);
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  cfg.attention_aggregation = false;
  ChainNet model(cfg, rng);
  const auto g = edge::build_graph(small_system(), small_placement(),
                                   model.feature_mode());
  expect_paths_match(model, g);
}

TEST(ChainNetFastInference, MatchesOnRawOutputVariant) {
  Rng rng(7);
  auto cfg = ChainNetConfig::ablation_beta();
  cfg.hidden = 8;
  cfg.iterations = 2;
  ChainNet model(cfg, rng);
  const auto g = edge::build_graph(small_system(), small_placement(),
                                   model.feature_mode());
  expect_paths_match(model, g);
}

class FastInferenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(FastInferenceSweep, MatchesOnRandomTypeIIGraphs) {
  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  ChainNetConfig cfg;
  cfg.hidden = 12;
  cfg.iterations = 3;
  ChainNet model(cfg, rng);
  auto params = edge::NetworkGenParams::type2();
  Rng gen(200 + static_cast<std::uint64_t>(GetParam()));
  const auto sample = edge::generate_network_sample(params, gen);
  const auto g = edge::build_graph(sample.system, sample.placement,
                                   model.feature_mode());
  expect_paths_match(model, g, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastInferenceSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace chainnet::core
