#include "gnn/metrics.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace chainnet::gnn {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;

TEST(Ape, Basics) {
  EXPECT_NEAR(ape(1.1, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(ape(0.9, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(ape(2.0, -1.0), 3.0, 1e-12);
  // Guarded near-zero ground truth.
  EXPECT_LT(ape(0.0, 0.0), 1e-6);
}

TEST(Summarize, PercentilesAndMape) {
  std::vector<double> apes;
  for (int i = 1; i <= 100; ++i) apes.push_back(static_cast<double>(i));
  const auto s = summarize(apes);
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mape, 50.5, 1e-9);
  EXPECT_NEAR(s.p75, 75.25, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(Summarize, Empty) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mape, 0.0);
}

TEST(TargetTransforms, ThroughputRoundTrip) {
  const auto g = edge::build_graph(small_system(), small_placement(),
                                   edge::FeatureMode::kModified);
  const double x = 0.6;  // chain 0, lambda = 0.8
  const double t = encode_throughput(g, 0, x, true);
  EXPECT_NEAR(t, 0.75, 1e-12);
  EXPECT_NEAR(decode_throughput(g, 0, t, true), x, 1e-12);
  // Raw mode is identity.
  EXPECT_DOUBLE_EQ(encode_throughput(g, 0, x, false), x);
}

TEST(TargetTransforms, ThroughputClampsAboveLambda) {
  const auto g = edge::build_graph(small_system(), small_placement(),
                                   edge::FeatureMode::kModified);
  EXPECT_DOUBLE_EQ(encode_throughput(g, 0, 5.0, true), 1.0);
}

TEST(TargetTransforms, LatencyRoundTrip) {
  const auto g = edge::build_graph(small_system(), small_placement(),
                                   edge::FeatureMode::kModified);
  // Chain 0 total processing = 1.35; latency 2.7 -> ratio 0.5.
  const double t = encode_latency(g, 0, 2.7, true);
  EXPECT_NEAR(t, 0.5, 1e-12);
  EXPECT_NEAR(decode_latency(g, 0, t, true), 2.7, 1e-12);
}

TEST(TargetTransforms, LatencyDecodingGuardsZeroRatio) {
  const auto g = edge::build_graph(small_system(), small_placement(),
                                   edge::FeatureMode::kModified);
  EXPECT_TRUE(std::isfinite(decode_latency(g, 0, 0.0, true)));
}

/// A fake model that predicts fixed target-space values, used to check the
/// evaluation plumbing without training.
class ConstantModel final : public GraphModel {
 public:
  ConstantModel(double tput_ratio, double lat_ratio)
      : tput_(tput_ratio), lat_(lat_ratio) {}
  std::vector<ChainOutput> forward(const edge::PlacementGraph& g) override {
    std::vector<ChainOutput> out(static_cast<std::size_t>(g.num_chains));
    for (auto& o : out) {
      o.throughput = tensor::Var::scalar(tput_);
      o.latency = tensor::Var::scalar(lat_);
    }
    return out;
  }
  edge::FeatureMode feature_mode() const override {
    return edge::FeatureMode::kModified;
  }
  bool ratio_outputs() const override { return true; }
  std::string name() const override { return "Constant"; }

 private:
  double tput_, lat_;
};

Dataset tiny_dataset() {
  LabelingConfig cfg;
  cfg.arrivals_per_chain = 300.0;
  Dataset ds;
  ds.samples.push_back(label_sample(small_system(), small_placement(), cfg));
  return ds;
}

TEST(Evaluate, PerfectRatioPredictionsHaveTinyApe) {
  auto ds = tiny_dataset();
  const auto& s = ds.samples[0];
  // Feed back the exact encoded ground truth of chain 0 as the constant.
  const auto& g = s.graph_modified;
  ConstantModel model(encode_throughput(g, 0, s.throughput[0], true),
                      encode_latency(g, 0, s.latency[0], true));
  const auto errors = evaluate(model, ds);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_TRUE(errors[0].has_throughput);
  EXPECT_NEAR(errors[0].ape_throughput, 0.0, 1e-9);
  EXPECT_NEAR(errors[0].ape_latency, 0.0, 1e-9);
  // Chain 1 has different ground truth, so nonzero error there.
  EXPECT_GT(errors[1].ape_throughput, 0.0);
  EXPECT_EQ(errors[0].num_nodes, 11);
  EXPECT_EQ(errors[0].num_chains, 2);
}

TEST(Evaluate, ApeVectorsFilterFlags) {
  auto ds = tiny_dataset();
  ds.samples[0].has_latency[1] = 0;  // drop one latency label
  ConstantModel model(0.5, 0.5);
  const auto errors = evaluate(model, ds);
  EXPECT_EQ(throughput_apes(errors).size(), 2u);
  EXPECT_EQ(latency_apes(errors).size(), 1u);
}

TEST(GroupBy, BucketsSplitRange) {
  std::vector<ChainError> errors;
  for (int n = 10; n <= 50; n += 10) {
    ChainError e;
    e.num_nodes = n;
    e.num_chains = n / 10;
    e.has_throughput = true;
    e.ape_throughput = static_cast<double>(n) / 100.0;
    errors.push_back(e);
  }
  const auto groups = group_by(errors, GroupKey::kNumNodes, 2);
  ASSERT_EQ(groups.size(), 2u);
  // Equal-width buckets over [10, 50]: [10, 30) and [30, 50].
  EXPECT_EQ(groups[0].throughput.count, 2u);  // 10, 20
  EXPECT_EQ(groups[1].throughput.count, 3u);  // 30, 40, 50
  EXPECT_DOUBLE_EQ(groups[0].key_lo, 10.0);
  EXPECT_DOUBLE_EQ(groups[1].key_hi, 50.0);
}

TEST(GroupBy, EmptyInput) {
  EXPECT_TRUE(group_by({}, GroupKey::kNumChains, 3).empty());
}

TEST(RankAgreement, PerfectOrderIsFullyConcordant) {
  const std::vector<double> ref = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> cand = {10.0, 20.0, 30.0, 40.0};
  const auto r = pairwise_rank_agreement(ref, cand);
  EXPECT_EQ(r.concordant, 6u);
  EXPECT_EQ(r.discordant, 0u);
  EXPECT_EQ(r.reference_ties, 0u);
  EXPECT_DOUBLE_EQ(r.agreement(), 1.0);
}

TEST(RankAgreement, FullInversionIsFullyDiscordant) {
  const std::vector<double> ref = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> cand = {4.0, 3.0, 2.0, 1.0};
  const auto r = pairwise_rank_agreement(ref, cand);
  EXPECT_EQ(r.concordant, 0u);
  EXPECT_EQ(r.discordant, 6u);
  EXPECT_DOUBLE_EQ(r.agreement(), 0.0);
}

TEST(RankAgreement, SingleSwapCountsOneDiscordantPair) {
  const std::vector<double> ref = {1.0, 2.0, 3.0};
  const std::vector<double> cand = {2.0, 1.0, 3.0};  // (0,1) flipped
  const auto r = pairwise_rank_agreement(ref, cand);
  EXPECT_EQ(r.concordant, 2u);
  EXPECT_EQ(r.discordant, 1u);
  EXPECT_NEAR(r.agreement(), 2.0 / 3.0, 1e-12);
}

TEST(RankAgreement, ReferenceTiesAreSkippedNotJudged) {
  // ref ties (0,1) exactly; the candidate may order that pair either way
  // without penalty. The remaining pairs are strict and concordant.
  const std::vector<double> ref = {1.0, 1.0, 2.0};
  const std::vector<double> cand = {5.0, 4.0, 6.0};
  const auto r = pairwise_rank_agreement(ref, cand);
  EXPECT_EQ(r.reference_ties, 1u);
  EXPECT_EQ(r.concordant, 2u);
  EXPECT_EQ(r.discordant, 0u);
  EXPECT_DOUBLE_EQ(r.agreement(), 1.0);
}

TEST(RankAgreement, RelativeTieToleranceScalesWithMagnitude) {
  // 1e6 vs 1e6 + 1 is a tie at tie_eps = 1e-3 but comparable at 1e-9.
  const std::vector<double> ref = {1e6, 1e6 + 1.0};
  const std::vector<double> cand = {2.0, 1.0};
  EXPECT_EQ(pairwise_rank_agreement(ref, cand, 1e-3).reference_ties, 1u);
  const auto strict = pairwise_rank_agreement(ref, cand, 1e-9);
  EXPECT_EQ(strict.reference_ties, 0u);
  EXPECT_EQ(strict.discordant, 1u);
}

TEST(RankAgreement, CandidateTieOnComparablePairIsDiscordant) {
  // The reduced tier collapsing a real distinction is the failure mode the
  // gate exists for — it must not hide inside "ties".
  const std::vector<double> ref = {1.0, 2.0};
  const std::vector<double> cand = {3.0, 3.0};
  const auto r = pairwise_rank_agreement(ref, cand);
  EXPECT_EQ(r.discordant, 1u);
  EXPECT_DOUBLE_EQ(r.agreement(), 0.0);
}

TEST(RankAgreement, AllEqualReferenceHasNothingToContradict) {
  const std::vector<double> ref = {2.0, 2.0, 2.0};
  const std::vector<double> cand = {1.0, 5.0, 3.0};
  const auto r = pairwise_rank_agreement(ref, cand);
  EXPECT_EQ(r.comparable(), 0u);
  EXPECT_EQ(r.reference_ties, 3u);
  EXPECT_DOUBLE_EQ(r.agreement(), 1.0);
}

TEST(RankAgreement, EmptyAndSingletonAgreeTrivially) {
  EXPECT_DOUBLE_EQ(pairwise_rank_agreement({}, {}).agreement(), 1.0);
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(pairwise_rank_agreement(one, one).agreement(), 1.0);
}

TEST(RankAgreement, LengthMismatchThrows) {
  const std::vector<double> ref = {1.0, 2.0};
  const std::vector<double> cand = {1.0};
  EXPECT_THROW(pairwise_rank_agreement(ref, cand), std::invalid_argument);
}

}  // namespace
}  // namespace chainnet::gnn
