#include "serve/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace chainnet::serve {
namespace {

TEST(Counter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(LatencyHistogram, QuantilesBracketRecordedValues) {
  LatencyHistogram h;
  // 90 fast observations at ~100us, 10 slow at ~50ms.
  for (int i = 0; i < 90; ++i) h.record(100e-6);
  for (int i = 0; i < 10; ++i) h.record(50e-3);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, 100u);
  // Geometric buckets have <=25% edge error; allow that slack.
  EXPECT_GE(snap.quantile(0.50), 100e-6);
  EXPECT_LE(snap.quantile(0.50), 130e-6);
  EXPECT_GE(snap.quantile(0.95), 50e-3);
  EXPECT_LE(snap.quantile(0.95), 65e-3);
  EXPECT_GE(snap.quantile(0.99), 50e-3);
  EXPECT_NEAR(snap.mean(), (90 * 100e-6 + 10 * 50e-3) / 100, 1e-9);
}

TEST(LatencyHistogram, EmptyAndExtremeValues) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
  h.record(0.0);       // at/below the floor -> first bucket
  h.record(-1.0);      // negative -> first bucket, not UB
  h.record(1e9);       // beyond the range -> overflow bucket
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, 3u);
  EXPECT_EQ(snap.counts.front(), 2u);
  EXPECT_EQ(snap.counts.back(), 1u);
  // The overflow bucket reports the last finite edge, not infinity.
  EXPECT_TRUE(std::isfinite(snap.quantile(1.0)));
}

TEST(LatencyHistogram, BucketEdgesAreMonotone) {
  const auto snap = LatencyHistogram().snapshot();
  for (std::size_t i = 1; i + 1 < snap.upper_edges.size(); ++i) {
    EXPECT_GT(snap.upper_edges[i], snap.upper_edges[i - 1]);
  }
  EXPECT_TRUE(std::isinf(snap.upper_edges.back()));
}

TEST(SizeHistogram, CountsExactSizesAndClampsOverflow) {
  SizeHistogram h(8);
  h.record(1);
  h.record(1);
  h.record(3);
  h.record(8);    // == max -> overflow slot
  h.record(100);  // beyond max -> overflow slot
  const auto snap = h.snapshot();
  EXPECT_EQ(snap[1], 2u);
  EXPECT_EQ(snap[3], 1u);
  EXPECT_EQ(snap.back(), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Metrics, ConcurrentRecordingLosesNothing) {
  // The counters sit on the serving hot path, written by reader threads
  // and the flusher concurrently; relaxed atomics must still account for
  // every event. (Also the TSan target for this module.)
  Counter counter;
  LatencyHistogram latency;
  SizeHistogram sizes(32);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        latency.record(1e-5 * (1 + (i + t) % 100));
        sizes.record(static_cast<std::size_t>((i + t) % 40));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(latency.snapshot().total, kThreads * kPerThread);
  EXPECT_EQ(sizes.total(), kThreads * kPerThread);
  std::uint64_t bucket_sum = 0;
  for (auto c : latency.snapshot().counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, kThreads * kPerThread);
}

}  // namespace
}  // namespace chainnet::serve
