#include "edge/json_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "test_util.h"

namespace chainnet::edge {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;

TEST(JsonIo, SystemRoundTrip) {
  const auto original = small_system();
  const auto doc = to_json(original);
  const auto restored = system_from_json(doc);
  ASSERT_EQ(restored.num_devices(), original.num_devices());
  ASSERT_EQ(restored.num_chains(), original.num_chains());
  for (int k = 0; k < original.num_devices(); ++k) {
    EXPECT_EQ(restored.devices[k].name, original.devices[k].name);
    EXPECT_DOUBLE_EQ(restored.devices[k].memory_capacity,
                     original.devices[k].memory_capacity);
    EXPECT_DOUBLE_EQ(restored.devices[k].service_rate,
                     original.devices[k].service_rate);
  }
  for (int i = 0; i < original.num_chains(); ++i) {
    EXPECT_DOUBLE_EQ(restored.chains[i].arrival_rate,
                     original.chains[i].arrival_rate);
    ASSERT_EQ(restored.chains[i].length(), original.chains[i].length());
    for (int j = 0; j < original.chains[i].length(); ++j) {
      EXPECT_DOUBLE_EQ(restored.chains[i].fragments[j].compute_demand,
                       original.chains[i].fragments[j].compute_demand);
    }
  }
}

TEST(JsonIo, PlacementRoundTrip) {
  const auto original = small_placement();
  const auto restored = placement_from_json(to_json(original));
  EXPECT_EQ(restored.assignment(), original.assignment());
}

TEST(JsonIo, ParsesHandWrittenSystem) {
  const auto doc = support::Json::parse(R"({
    "devices": [
      {"name": "pi", "memory": 512, "rate": 1.5},
      {"memory": 256}
    ],
    "chains": [
      {"name": "vision", "arrival_rate": 2.0,
       "fragments": [{"memory": 2, "compute": 0.5}, {"compute": 0.3}]}
    ]
  })");
  const auto sys = system_from_json(doc);
  EXPECT_EQ(sys.devices[0].name, "pi");
  EXPECT_DOUBLE_EQ(sys.devices[1].service_rate, 1.0);  // default rate
  EXPECT_EQ(sys.devices[1].name, "dev1");              // default name
  EXPECT_DOUBLE_EQ(sys.chains[0].fragments[1].memory_demand, 1.0);
  EXPECT_DOUBLE_EQ(sys.chains[0].fragments[0].memory_demand, 2.0);
}

TEST(JsonIo, RejectsInvalidSystems) {
  // Valid JSON but an invalid system (validate() must fire).
  const auto doc = support::Json::parse(R"({
    "devices": [{"name": "d", "memory": -5}],
    "chains": [{"arrival_rate": 1,
                "fragments": [{"compute": 1}]}]
  })");
  EXPECT_THROW(system_from_json(doc), std::invalid_argument);
  // Structurally missing fields.
  EXPECT_THROW(system_from_json(support::Json::parse("{}")),
               support::JsonError);
}

TEST(JsonIo, FileRoundTrip) {
  namespace fs = std::filesystem;
  const auto sys_path = (fs::temp_directory_path() / "cn_sys.json").string();
  const auto pl_path = (fs::temp_directory_path() / "cn_pl.json").string();
  save_json(to_json(small_system()), sys_path);
  save_json(to_json(small_placement()), pl_path);
  const auto sys = load_system(sys_path);
  const auto placement = load_placement(pl_path);
  EXPECT_NO_THROW(placement.validate(sys));
  std::remove(sys_path.c_str());
  std::remove(pl_path.c_str());
}

TEST(JsonIo, MissingFileThrows) {
  EXPECT_THROW(load_system("/nonexistent/system.json"), std::runtime_error);
}

}  // namespace
}  // namespace chainnet::edge
