#include "optim/experiment.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace chainnet::optim {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;

TEST(LossProbability, Eq18) {
  const auto sys = small_system();  // lambda_total = 1.2
  EXPECT_NEAR(loss_probability(sys, 1.2), 0.0, 1e-12);
  EXPECT_NEAR(loss_probability(sys, 0.6), 0.5, 1e-12);
  EXPECT_NEAR(loss_probability(sys, 0.0), 1.0, 1e-12);
  // Simulation noise above lambda_total clamps to 0.
  EXPECT_NEAR(loss_probability(sys, 1.3), 0.0, 1e-12);
}

TEST(RelativeLossReduction, Eq19) {
  const auto sys = small_system();  // lambda_total = 1.2
  // Initial throughput 0.6 (loss 0.5); optimized 0.9 (loss 0.25):
  // eta = (0.9 - 0.6) / (1.2 - 0.6) = 0.5.
  EXPECT_NEAR(relative_loss_reduction(sys, 0.6, 0.9), 0.5, 1e-12);
  // No improvement -> 0; full recovery -> 1.
  EXPECT_NEAR(relative_loss_reduction(sys, 0.6, 0.6), 0.0, 1e-12);
  EXPECT_NEAR(relative_loss_reduction(sys, 0.6, 1.2), 1.0, 1e-12);
  // Lossless initial placement: reduction undefined, reported as 0.
  EXPECT_NEAR(relative_loss_reduction(sys, 1.2, 1.2), 0.0, 1e-12);
}

TEST(SimulatedTotalThroughput, MatchesDirectSimulation) {
  const auto sys = small_system();
  queueing::SimConfig cfg;
  cfg.horizon = 10000.0;
  cfg.seed = 3;
  const double x =
      simulated_total_throughput(sys, small_placement(), cfg);
  EXPECT_GT(x, 1.0);
  EXPECT_LE(x, 1.25);
}

std::vector<TrajectoryPoint> sample_trajectory() {
  return {
      {0, 0.0, 1.0, 1.0},
      {1, 0.5, 0.8, 1.0},
      {2, 1.0, 1.5, 1.5},
      {3, 2.0, 1.4, 1.5},
      {4, 4.0, 2.0, 2.0},
  };
}

TEST(BestAtTimes, StepFunctionSampling) {
  const auto traj = sample_trajectory();
  const auto values = best_at_times(traj, {0.0, 0.7, 1.0, 3.0, 10.0});
  ASSERT_EQ(values.size(), 5u);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 1.0);
  EXPECT_DOUBLE_EQ(values[2], 1.5);
  EXPECT_DOUBLE_EQ(values[3], 1.5);
  EXPECT_DOUBLE_EQ(values[4], 2.0);
}

TEST(BestAtTimes, BeforeFirstPointUsesFirstValue) {
  const auto values = best_at_times(sample_trajectory(), {-1.0});
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_THROW(best_at_times({}, {0.0}), std::invalid_argument);
}

TEST(BestAtSteps, SamplesByStepIndex) {
  const auto traj = sample_trajectory();
  const auto values = best_at_steps(traj, {0, 2, 3, 100});
  ASSERT_EQ(values.size(), 4u);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 1.5);
  EXPECT_DOUBLE_EQ(values[2], 1.5);
  EXPECT_DOUBLE_EQ(values[3], 2.0);
}

}  // namespace
}  // namespace chainnet::optim
