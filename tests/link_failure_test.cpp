// Tests for the link-failure extension (paper §X future work): jobs may be
// dropped on the transmission into a step, independently of buffer state.
#include <gtest/gtest.h>

#include <memory>

#include "queueing/network.h"
#include "queueing/simulator.h"

namespace chainnet::queueing {
namespace {

using support::Exponential;

QnModel failing_tandem(double lambda, double fail0, double fail1) {
  QnModel qn;
  qn.stations.push_back({"s0", 1e6});
  qn.stations.push_back({"s1", 1e6});
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(1.0 / lambda);
  chain.steps.emplace_back(0, std::make_unique<Exponential>(0.2), 1.0, 0.0,
                           fail0);
  chain.steps.emplace_back(1, std::make_unique<Exponential>(0.2), 1.0, 0.0,
                           fail1);
  qn.chains.push_back(std::move(chain));
  return qn;
}

TEST(LinkFailure, ValidateRejectsOutOfRange) {
  auto qn = failing_tandem(1.0, 0.3, 0.0);
  EXPECT_NO_THROW(qn.validate());
  qn.chains[0].steps[1].link_failure_probability = 1.0;
  EXPECT_THROW(qn.validate(), std::invalid_argument);
  qn.chains[0].steps[1].link_failure_probability = -0.5;
  EXPECT_THROW(qn.validate(), std::invalid_argument);
}

TEST(LinkFailure, FirstHopFailuresThinExternalArrivals) {
  const double q = 0.25;
  const auto qn = failing_tandem(1.0, q, 0.0);
  SimConfig cfg;
  cfg.horizon = 200000.0;
  cfg.seed = 3;
  const auto r = simulate(qn, cfg);
  // Throughput = lambda * (1 - q); dropped jobs count as losses.
  EXPECT_NEAR(r.chains[0].throughput, 1.0 - q, 0.02);
  EXPECT_NEAR(r.chains[0].loss_probability, q, 0.02);
  EXPECT_NEAR(static_cast<double>(r.stations[0].admitted) /
                  static_cast<double>(r.chains[0].arrivals),
              1.0 - q, 0.02);
}

TEST(LinkFailure, MidChainFailuresCompound) {
  const auto qn = failing_tandem(1.0, 0.2, 0.3);
  SimConfig cfg;
  cfg.horizon = 200000.0;
  cfg.seed = 5;
  const auto r = simulate(qn, cfg);
  // Survival through both links: (1 - 0.2) * (1 - 0.3) = 0.56.
  EXPECT_NEAR(r.chains[0].throughput, 0.56, 0.02);
  EXPECT_NEAR(r.chains[0].loss_probability, 0.44, 0.02);
}

TEST(LinkFailure, CombinesWithBufferLoss) {
  // Tight buffer downstream: total loss must exceed pure link loss.
  QnModel qn;
  qn.stations.push_back({"s0", 1e6});
  qn.stations.push_back({"tight", 2.0});
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(0.5);
  chain.steps.emplace_back(0, std::make_unique<Exponential>(0.1), 1.0, 0.0,
                           0.1);
  chain.steps.emplace_back(1, std::make_unique<Exponential>(0.6), 1.0);
  qn.chains.push_back(std::move(chain));
  SimConfig cfg;
  cfg.horizon = 100000.0;
  cfg.seed = 7;
  const auto r = simulate(qn, cfg);
  EXPECT_GT(r.chains[0].loss_probability, 0.1);
  EXPECT_GT(r.stations[1].rejected, 0u);
}

TEST(LinkFailure, CombinesWithEarlyExit) {
  // A job that exits early never traverses the failing second link.
  QnModel qn;
  qn.stations.push_back({"s0", 1e6});
  qn.stations.push_back({"s1", 1e6});
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(1.0);
  chain.steps.emplace_back(0, std::make_unique<Exponential>(0.1), 1.0,
                           /*exit=*/0.5, /*fail=*/0.0);
  chain.steps.emplace_back(1, std::make_unique<Exponential>(0.1), 1.0,
                           /*exit=*/0.0, /*fail=*/0.4);
  qn.chains.push_back(std::move(chain));
  SimConfig cfg;
  cfg.horizon = 200000.0;
  cfg.seed = 9;
  const auto r = simulate(qn, cfg);
  // Completion probability = 0.5 (early exit) + 0.5 * 0.6 (survive link).
  EXPECT_NEAR(r.chains[0].throughput, 0.8, 0.02);
  EXPECT_NEAR(r.chains[0].loss_probability, 0.2, 0.02);
}

}  // namespace
}  // namespace chainnet::queueing
