// Bit-exactness contract of the dense inference kernels (kernels.h): the
// row-blocked gemv must agree with the single-accumulator gemv_naive
// reference on every element, and every gemm batch column must agree with
// a gemv over that column — across shapes that hit every tile width and
// remainder path of the dispatched ISA variant (including the packed
// column tiles used for wide panels). These are EXPECT_EQ on doubles on
// purpose: the kernels promise identical accumulation chains, not just
// closeness.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/rng.h"
#include "tensor/kernels.h"

namespace chainnet::tensor::kernels {
namespace {

std::vector<double> random_values(std::size_t n, support::Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

void expect_gemv_matches_naive(std::size_t rows, std::size_t cols,
                               bool with_bias) {
  support::Rng rng(11 * rows + cols + (with_bias ? 1 : 0));
  const auto w = random_values(rows * cols, rng);
  const auto bias = random_values(rows, rng);
  const auto x = random_values(cols, rng);
  std::vector<double> blocked(rows, -1.0), naive(rows, -2.0);
  const double* b = with_bias ? bias.data() : nullptr;
  gemv(w.data(), b, x.data(), blocked.data(), rows, cols);
  gemv_naive(w.data(), b, x.data(), naive.data(), rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_EQ(blocked[r], naive[r]) << "row " << r << " of " << rows << "x"
                                    << cols << " bias=" << with_bias;
  }
}

TEST(Kernels, BlockedGemvMatchesNaiveBitExact) {
  // Rows sweep every remainder of the 4-row block; cols include 1 and odd
  // sizes plus the GRU/MLP widths the model actually uses.
  for (const std::size_t rows : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 192u}) {
    for (const std::size_t cols : {1u, 2u, 3u, 17u, 64u, 128u}) {
      expect_gemv_matches_naive(rows, cols, true);
      expect_gemv_matches_naive(rows, cols, false);
    }
  }
}

void expect_gemm_matches_gemv(std::size_t rows, std::size_t cols,
                              std::size_t n, bool with_bias) {
  support::Rng rng(101 * rows + 13 * cols + n + (with_bias ? 1 : 0));
  const auto w = random_values(rows * cols, rng);
  const auto bias = random_values(rows, rng);
  const auto x = random_values(cols * n, rng);  // row-major [cols x n] panel
  std::vector<double> batched(rows * n, -1.0);
  const double* b = with_bias ? bias.data() : nullptr;
  gemm(w.data(), b, x.data(), batched.data(), rows, cols, n);
  std::vector<double> xj(cols), yj(rows);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t c = 0; c < cols; ++c) xj[c] = x[c * n + j];
    gemv(w.data(), b, xj.data(), yj.data(), rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(batched[r * n + j], yj[r])
          << "element (" << r << "," << j << ") of " << rows << "x" << cols
          << " gemm with n=" << n << " bias=" << with_bias;
    }
  }
}

TEST(Kernels, GemmColumnsMatchGemvBitExact) {
  // n sweeps every tile width (32/16/8/4/2/1) with remainders on both sides
  // of each boundary; n > the top tile width additionally exercises the
  // packed-panel path of the wide tiles.
  for (const std::size_t n :
       {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u, 33u, 40u,
        64u, 89u}) {
    expect_gemm_matches_gemv(6, 33, n, true);
    expect_gemm_matches_gemv(6, 33, n, false);
  }
  // Shapes from the real model: stacked GRU gate panels and attention
  // projections at paper width, with a wide batch panel.
  expect_gemm_matches_gemv(192, 128, 32, true);
  expect_gemm_matches_gemv(192, 64, 32, true);
  expect_gemm_matches_gemv(128, 128, 89, true);
  expect_gemm_matches_gemv(1, 1, 3, true);
}

TEST(Kernels, GemmWithSingleColumnIsGemv) {
  // n == 1 short-circuits to gemv; pin that the panel layout degenerates
  // correctly.
  expect_gemm_matches_gemv(9, 17, 1, true);
  expect_gemm_matches_gemv(9, 17, 1, false);
}

TEST(Kernels, ReportsKnownIsa) {
  const std::string isa_name = isa();
  EXPECT_TRUE(isa_name == "baseline" || isa_name == "avx2" ||
              isa_name == "avx512")
      << isa_name;
}

}  // namespace
}  // namespace chainnet::tensor::kernels
