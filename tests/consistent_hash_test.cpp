// Pins the two properties the scale-out router depends on: the ring
// spreads keys evenly across backends, and ejecting a backend remaps ONLY
// the keys that backend owned (exact minimal movement — see hash_ring.h on
// why the immutable-ring + healthy-mask design makes this exact).
#include "serve/hash_ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace chainnet::serve {
namespace {

std::vector<std::uint64_t> sample_keys(std::size_t count) {
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back(HashRing::hash_bytes("system-" + std::to_string(i)));
  }
  return keys;
}

TEST(HashRing, BalancedAcrossBackendCounts) {
  const auto keys = sample_keys(20000);
  for (std::size_t backends = 2; backends <= 16; ++backends) {
    const HashRing ring(backends);
    std::vector<std::size_t> counts(backends, 0);
    for (const auto key : keys) ++counts[ring.pick(key)];
    const auto [min_it, max_it] =
        std::minmax_element(counts.begin(), counts.end());
    ASSERT_GT(*min_it, 0u) << backends << " backends: empty shard";
    const double ratio = static_cast<double>(*max_it) /
                         static_cast<double>(*min_it);
    // 128 vnodes/backend: measured worst case over 2..16 backends is ~2.5
    // (shard-size std is ~1/sqrt(128) of the mean, and max/min compounds
    // both tails); 2.8 is the envelope hash_ring.h advertises.
    EXPECT_LE(ratio, 2.8) << backends << " backends: max/min shard ratio "
                          << ratio;
  }
}

TEST(HashRing, EjectionMovesOnlyTheEjectedBackendsKeys) {
  const auto keys = sample_keys(20000);
  for (const std::size_t backends : {3u, 8u}) {
    const HashRing ring(backends);
    for (std::size_t ejected = 0; ejected < backends; ++ejected) {
      std::vector<char> healthy(backends, 1);
      healthy[ejected] = 0;
      std::size_t owned = 0;
      for (const auto key : keys) {
        const std::size_t home = ring.pick(key);
        const auto rerouted = ring.pick_healthy(key, healthy);
        ASSERT_TRUE(rerouted.has_value());
        if (home == ejected) {
          ++owned;
          EXPECT_NE(*rerouted, ejected);
        } else {
          // Exact minimal movement: every key NOT owned by the ejected
          // backend keeps its home.
          EXPECT_EQ(*rerouted, home);
        }
      }
      // The ejected backend owned ~1/N of the keyspace (within the shard
      // imbalance envelope), so that is all that may move.
      EXPECT_LT(static_cast<double>(owned) / keys.size(),
                2.2 / static_cast<double>(backends));
    }
  }
}

TEST(HashRing, ReinstatementRestoresOriginalOwnership) {
  const auto keys = sample_keys(2000);
  const HashRing ring(5);
  const std::vector<char> all_healthy(5, 1);
  for (const auto key : keys) {
    EXPECT_EQ(*ring.pick_healthy(key, all_healthy), ring.pick(key));
  }
}

TEST(HashRing, DeterministicAcrossInstances) {
  const HashRing a(7), b(7);
  for (const auto key : sample_keys(500)) {
    EXPECT_EQ(a.pick(key), b.pick(key));
  }
}

TEST(HashRing, SequenceIsAPermutationStartingAtPick) {
  const HashRing ring(6);
  for (const auto key : sample_keys(200)) {
    const auto order = ring.sequence(key);
    ASSERT_EQ(order.size(), 6u);
    EXPECT_EQ(order.front(), ring.pick(key));
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t b = 0; b < sorted.size(); ++b) {
      EXPECT_EQ(sorted[b], b);  // each backend exactly once
    }
  }
}

TEST(HashRing, AllUnhealthyYieldsNullopt) {
  const HashRing ring(4);
  const std::vector<char> none(4, 0);
  EXPECT_FALSE(ring.pick_healthy(12345, none).has_value());
}

TEST(HashRing, HashBytesIsFnv1a) {
  // Reference vectors for 64-bit FNV-1a: the offset basis for the empty
  // string, and the published value for "a".
  EXPECT_EQ(HashRing::hash_bytes(""), 14695981039346656037ull);
  EXPECT_EQ(HashRing::hash_bytes("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(HashRing::hash_bytes("tenant-0"), HashRing::hash_bytes("tenant-1"));
}

TEST(HashRing, MixIsOrderDependent) {
  EXPECT_NE(HashRing::mix(1, 2), HashRing::mix(2, 1));
  EXPECT_EQ(HashRing::mix(1, 2), HashRing::mix(1, 2));
}

}  // namespace
}  // namespace chainnet::serve
