// Property-based validation of the DES engine against the Pollaczek-
// Khinchine formula: for an M/G/1 queue with utilization rho and service
// SCV c2, the mean number in system is rho + rho^2 (1 + c2) / (2 (1 - rho)).
// Running the sweep over APH service distributions validates the simulator
// and the APH moment fitting jointly — exactly the configuration the
// Type II generator (Table III) relies on.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "queueing/network.h"
#include "queueing/simulator.h"
#include "support/distributions.h"

namespace chainnet::queueing {
namespace {

using support::AcyclicPhaseType;
using support::Deterministic;
using support::Distribution;
using support::Exponential;

QnModel mg1(double lambda, std::unique_ptr<Distribution> service) {
  QnModel qn;
  qn.stations.push_back({"s0", 1e9});  // effectively infinite buffer
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(1.0 / lambda);
  chain.steps.emplace_back(0, std::move(service), 1.0);
  qn.chains.push_back(std::move(chain));
  return qn;
}

double pk_mean_jobs(double rho, double scv) {
  return rho + rho * rho * (1.0 + scv) / (2.0 * (1.0 - rho));
}

class Mg1PkTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(Mg1PkTest, MeanJobsMatchesPollaczekKhinchine) {
  const auto [rho, scv] = GetParam();
  const double lambda = rho;  // unit mean service
  auto service = std::make_unique<AcyclicPhaseType>(1.0, scv);
  const auto qn = mg1(lambda, std::move(service));
  SimConfig cfg;
  cfg.horizon = 2000000.0;
  cfg.warmup_fraction = 0.05;
  cfg.seed = 99;
  const auto sim = simulate(qn, cfg);
  const double expected = pk_mean_jobs(rho, scv);
  EXPECT_NEAR(sim.stations[0].mean_jobs, expected, 0.06 * expected)
      << "rho=" << rho << " scv=" << scv;
  EXPECT_NEAR(sim.stations[0].utilization, rho, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    RhoScvGrid, Mg1PkTest,
    ::testing::Values(std::make_tuple(0.3, 0.5),
                      std::make_tuple(0.5, 0.5),
                      std::make_tuple(0.5, 2.0),
                      std::make_tuple(0.7, 4.0),
                      std::make_tuple(0.7, 0.25),
                      std::make_tuple(0.5, 10.0)));  // Type II service SCV

TEST(Mg1Pk, DeterministicServiceIsLowestVariance) {
  // M/D/1 vs M/M/1 at the same rho: deterministic service halves the
  // queueing term.
  const double rho = 0.6;
  SimConfig cfg;
  cfg.horizon = 1000000.0;
  cfg.seed = 5;
  const auto md1 =
      simulate(mg1(rho, std::make_unique<Deterministic>(1.0)), cfg);
  const auto mm1 =
      simulate(mg1(rho, std::make_unique<Exponential>(1.0)), cfg);
  EXPECT_LT(md1.stations[0].mean_jobs, mm1.stations[0].mean_jobs);
  EXPECT_NEAR(md1.stations[0].mean_jobs, pk_mean_jobs(rho, 0.0),
              0.05 * pk_mean_jobs(rho, 0.0));
}

}  // namespace
}  // namespace chainnet::queueing
