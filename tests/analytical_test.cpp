#include "queueing/analytical.h"

#include <gtest/gtest.h>

#include <cmath>

namespace chainnet::queueing {
namespace {

TEST(Mm1k, RejectsInvalid) {
  EXPECT_THROW(mm1k(0.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(mm1k(1.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(mm1k(1.0, 1.0, 0), std::invalid_argument);
}

TEST(Mm1k, K1IsErlangB1) {
  // M/M/1/1 blocking equals Erlang-B with one server.
  const double lambda = 0.8, mu = 1.0;
  const auto m = mm1k(lambda, mu, 1);
  EXPECT_NEAR(m.loss_probability, erlang_b(1, lambda / mu), 1e-12);
}

TEST(Mm1k, BalancedRhoUniform) {
  const auto m = mm1k(1.0, 1.0, 4);
  EXPECT_NEAR(m.loss_probability, 0.2, 1e-12);
  EXPECT_NEAR(m.mean_jobs, 2.0, 1e-12);
  EXPECT_NEAR(m.utilization, 0.8, 1e-12);
}

TEST(Mm1k, ApproachesMm1ForLargeK) {
  const double lambda = 0.5, mu = 1.0;
  const auto finite = mm1k(lambda, mu, 60);
  const auto infinite = mm1(lambda, mu);
  EXPECT_NEAR(finite.loss_probability, 0.0, 1e-12);
  EXPECT_NEAR(finite.mean_jobs, infinite.mean_jobs, 1e-9);
  EXPECT_NEAR(finite.mean_response, infinite.mean_response, 1e-9);
}

TEST(Mm1k, OverloadedLosesExcess) {
  // With rho >> 1 throughput saturates at mu and loss approaches
  // 1 - mu/lambda.
  const auto m = mm1k(10.0, 1.0, 20);
  EXPECT_NEAR(m.throughput, 1.0, 1e-6);
  EXPECT_NEAR(m.loss_probability, 0.9, 1e-6);
}

TEST(Mm1k, LittleLawConsistency) {
  const auto m = mm1k(0.7, 1.0, 5);
  EXPECT_NEAR(m.mean_jobs, m.throughput * m.mean_response, 1e-12);
}

TEST(Mm1, RejectsUnstable) {
  EXPECT_THROW(mm1(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(mm1(2.0, 1.0), std::invalid_argument);
}

TEST(Mm1, ClassicFormulas) {
  const auto m = mm1(0.5, 1.0);
  EXPECT_NEAR(m.mean_jobs, 1.0, 1e-12);
  EXPECT_NEAR(m.mean_response, 2.0, 1e-12);
  EXPECT_NEAR(m.utilization, 0.5, 1e-12);
}

TEST(Mg1, ReducesToMm1ForUnitScv) {
  const double rho = 0.6;
  EXPECT_NEAR(mg1_mean_jobs(rho, 1.0), rho / (1.0 - rho), 1e-12);
}

TEST(Mg1, DeterministicHalvesQueueTerm) {
  const double rho = 0.6;
  const double mm1_queue = mg1_mean_jobs(rho, 1.0) - rho;
  const double md1_queue = mg1_mean_jobs(rho, 0.0) - rho;
  EXPECT_NEAR(md1_queue, mm1_queue / 2.0, 1e-12);
}

TEST(Mg1, ResponseViaLittle) {
  // lambda=0.5, E[S]=1, c2=2 -> rho=0.5, L=0.5+0.25*3/(2*0.5)=1.25.
  EXPECT_NEAR(mg1_mean_response(0.5, 1.0, 2.0), 1.25 / 0.5, 1e-12);
}

TEST(Mg1, RejectsUnstable) {
  EXPECT_THROW(mg1_mean_jobs(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(mg1_mean_jobs(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(mg1_mean_response(0.0, 1.0, 1.0), std::invalid_argument);
}

TEST(ErlangB, KnownValues) {
  EXPECT_NEAR(erlang_b(0, 5.0), 1.0, 1e-12);
  EXPECT_NEAR(erlang_b(1, 1.0), 0.5, 1e-12);
  // B(2, 1) = (1/2) * 1 / (2 + 1 * 1/2)... via recurrence: 0.2.
  EXPECT_NEAR(erlang_b(2, 1.0), 0.2, 1e-12);
}

TEST(ErlangB, MonotoneInServers) {
  double prev = 1.0;
  for (int c = 1; c <= 10; ++c) {
    const double b = erlang_b(c, 3.0);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(ErlangB, RejectsInvalid) {
  EXPECT_THROW(erlang_b(-1, 1.0), std::invalid_argument);
  EXPECT_THROW(erlang_b(1, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace chainnet::queueing
