// Property-based validation of the DES engine against the exact M/M/1/K
// closed forms: a single-chain, single-station network with unit memory
// demand and capacity K *is* an M/M/1/K queue, so simulated loss
// probability, throughput, mean occupancy and mean response must match the
// analytical values across the (lambda, mu, K) grid.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "queueing/analytical.h"
#include "queueing/network.h"
#include "queueing/simulator.h"

namespace chainnet::queueing {
namespace {

QnModel single_station(double lambda, double mu, int K) {
  QnModel qn;
  qn.stations.push_back({"s0", static_cast<double>(K)});
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<support::Exponential>(1.0 / lambda);
  chain.steps.emplace_back(
      0, std::make_unique<support::Exponential>(1.0 / mu), 1.0);
  qn.chains.push_back(std::move(chain));
  return qn;
}

class Mm1kSimTest
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(Mm1kSimTest, MatchesClosedForm) {
  const auto [lambda, mu, K] = GetParam();
  const auto qn = single_station(lambda, mu, K);
  SimConfig config;
  config.horizon = 400000.0 / lambda;  // ~400k arrivals
  config.warmup_fraction = 0.05;
  config.seed = 1234;
  const auto sim = simulate(qn, config);
  const auto exact = mm1k(lambda, mu, K);

  const auto& chain = sim.chains[0];
  const auto& station = sim.stations[0];
  EXPECT_NEAR(chain.loss_probability, exact.loss_probability,
              0.02 * std::max(exact.loss_probability, 0.05));
  EXPECT_NEAR(chain.throughput, exact.throughput, 0.02 * exact.throughput);
  EXPECT_NEAR(station.mean_jobs, exact.mean_jobs, 0.04 * exact.mean_jobs);
  EXPECT_NEAR(station.utilization, exact.utilization,
              0.02 * exact.utilization);
  EXPECT_NEAR(chain.mean_latency, exact.mean_response,
              0.04 * exact.mean_response);
}

INSTANTIATE_TEST_SUITE_P(
    LambdaMuKGrid, Mm1kSimTest,
    ::testing::Values(
        std::make_tuple(0.5, 1.0, 5),    // light load
        std::make_tuple(0.8, 1.0, 5),    // moderate load
        std::make_tuple(0.95, 1.0, 10),  // near-saturation
        std::make_tuple(1.0, 1.0, 4),    // balanced rho = 1
        std::make_tuple(2.0, 1.0, 5),    // overload, heavy loss
        std::make_tuple(5.0, 1.0, 3),    // extreme overload, tiny buffer
        std::make_tuple(0.3, 2.0, 2),    // fast server, small buffer
        std::make_tuple(1.5, 0.5, 8)));  // slow server

TEST(Mm1kSim, LittleLawHoldsOnSimulatedStation) {
  const auto qn = single_station(0.7, 1.0, 6);
  SimConfig config;
  config.horizon = 300000.0;
  config.seed = 7;
  const auto sim = simulate(qn, config);
  // L = lambda_effective * W.
  const double lhs = sim.stations[0].mean_jobs;
  const double rhs = sim.chains[0].throughput * sim.chains[0].mean_latency;
  EXPECT_NEAR(lhs, rhs, 0.02 * lhs);
}

TEST(Mm1kSim, MemoryOccupancyEqualsJobsForUnitDemand) {
  const auto qn = single_station(0.9, 1.0, 5);
  SimConfig config;
  config.horizon = 100000.0;
  config.seed = 21;
  const auto sim = simulate(qn, config);
  EXPECT_NEAR(sim.stations[0].mean_jobs, sim.stations[0].mean_memory_used,
              1e-9);
}

}  // namespace
}  // namespace chainnet::queueing
