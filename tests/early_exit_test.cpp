// Tests for the early-exit extension (paper §X future work): jobs may leave
// a chain successfully after intermediate steps with a per-step
// probability, modeling early-exit DNNs.
#include <gtest/gtest.h>

#include <memory>

#include "queueing/network.h"
#include "queueing/simulator.h"

namespace chainnet::queueing {
namespace {

using support::Exponential;

QnModel exit_tandem(double lambda, double exit_prob, double capacity) {
  QnModel qn;
  qn.stations.push_back({"s0", capacity});
  qn.stations.push_back({"s1", capacity});
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(1.0 / lambda);
  chain.steps.emplace_back(0, std::make_unique<Exponential>(0.2), 1.0,
                           exit_prob);
  chain.steps.emplace_back(1, std::make_unique<Exponential>(0.2), 1.0);
  qn.chains.push_back(std::move(chain));
  return qn;
}

TEST(EarlyExit, ValidateRejectsOutOfRange) {
  auto qn = exit_tandem(1.0, 0.5, 100.0);
  EXPECT_NO_THROW(qn.validate());
  qn.chains[0].steps[0].exit_probability = 1.0;
  EXPECT_THROW(qn.validate(), std::invalid_argument);
  qn.chains[0].steps[0].exit_probability = -0.1;
  EXPECT_THROW(qn.validate(), std::invalid_argument);
}

TEST(EarlyExit, ZeroProbabilityMatchesPureChain) {
  const auto qn = exit_tandem(1.0, 0.0, 100000.0);
  SimConfig cfg;
  cfg.horizon = 100000.0;
  cfg.seed = 3;
  const auto r = simulate(qn, cfg);
  // Stable, no loss: second station sees the full flow.
  EXPECT_NEAR(r.chains[0].throughput, 1.0, 0.02);
  EXPECT_NEAR(static_cast<double>(r.stations[1].admitted) /
                  static_cast<double>(r.stations[0].admitted),
              1.0, 0.01);
}

TEST(EarlyExit, ThinsDownstreamFlowGeometrically) {
  const double q = 0.4;
  const auto qn = exit_tandem(1.0, q, 100000.0);
  SimConfig cfg;
  cfg.horizon = 200000.0;
  cfg.seed = 5;
  const auto r = simulate(qn, cfg);
  // Station 1 receives only (1 - q) of the admitted flow.
  EXPECT_NEAR(static_cast<double>(r.stations[1].admitted) /
                  static_cast<double>(r.stations[0].admitted),
              1.0 - q, 0.02);
  // Early exits are completions, not losses: throughput stays ~lambda.
  EXPECT_NEAR(r.chains[0].throughput, 1.0, 0.02);
  EXPECT_EQ(r.chains[0].losses, 0u);
}

TEST(EarlyExit, ReducesMeanLatency) {
  // Exiting early skips the second station's service.
  const auto no_exit = exit_tandem(1.0, 0.0, 100000.0);
  const auto with_exit = exit_tandem(1.0, 0.6, 100000.0);
  SimConfig cfg;
  cfg.horizon = 200000.0;
  cfg.seed = 7;
  const double full = simulate(no_exit, cfg).chains[0].mean_latency;
  const double early = simulate(with_exit, cfg).chains[0].mean_latency;
  EXPECT_LT(early, full);
  // Mean latency is roughly service0 + (1-q) * sojourn1; with q = 0.6 the
  // second stage contributes ~40%.
  EXPECT_GT(early, 0.3 * full);
}

TEST(EarlyExit, ReducesLossUnderDownstreamOverload) {
  // The second station is the bottleneck; exits ahead of it save jobs.
  const auto build = [](double q) {
    QnModel qn;
    qn.stations.push_back({"s0", 100000.0});
    qn.stations.push_back({"bottleneck", 3.0});
    ChainSpec chain;
    chain.name = "c0";
    chain.interarrival = std::make_unique<Exponential>(0.5);
    chain.steps.emplace_back(0, std::make_unique<Exponential>(0.1), 1.0, q);
    chain.steps.emplace_back(1, std::make_unique<Exponential>(1.0), 1.0);
    qn.chains.push_back(std::move(chain));
    return qn;
  };
  SimConfig cfg;
  cfg.horizon = 100000.0;
  cfg.seed = 11;
  const auto lossy = simulate(build(0.0), cfg);
  const auto saved = simulate(build(0.7), cfg);
  EXPECT_GT(lossy.chains[0].loss_probability, 0.3);
  EXPECT_LT(saved.chains[0].loss_probability,
            lossy.chains[0].loss_probability * 0.6);
}

TEST(EarlyExit, LastStepExitIgnored) {
  // exit_probability on the last step has no effect (jobs complete there
  // anyway) — but it must still validate and simulate.
  QnModel qn;
  qn.stations.push_back({"s0", 100.0});
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(1.0);
  chain.steps.emplace_back(0, std::make_unique<Exponential>(0.2), 1.0, 0.9);
  qn.chains.push_back(std::move(chain));
  SimConfig cfg;
  cfg.horizon = 50000.0;
  cfg.seed = 13;
  const auto r = simulate(qn, cfg);
  EXPECT_NEAR(r.chains[0].throughput, 1.0, 0.03);
}

}  // namespace
}  // namespace chainnet::queueing
