// GraphWorkspace contract: build_graph into a reused workspace must produce
// a graph bitwise equal (PlacementGraph::operator==) to a fresh build, for
// every placement of an SA-style visitation walk, in both feature modes,
// and across switches to a different system mid-stream — stale capacity or
// leftover per-device aggregates from a previous build must never leak into
// the next one.
#include <gtest/gtest.h>

#include <vector>

#include "edge/graph.h"
#include "edge/problem.h"
#include "optim/annealing.h"
#include "optim/initial.h"
#include "support/rng.h"
#include "test_util.h"

namespace chainnet::edge {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;
using support::Rng;

EdgeSystem generated_system(std::uint64_t seed, int devices = 16) {
  auto params = PlacementProblemParams::paper(devices);
  Rng rng(seed);
  return generate_placement_problem(params, rng);
}

/// SA-style random walk from the ranking-score initial placement — the
/// visitation pattern the surrogate optimizer actually produces, so
/// consecutive builds differ by one move and shared buffers see realistic
/// shrink/grow sequences.
std::vector<Placement> walk(const EdgeSystem& system, int count,
                            std::uint64_t seed) {
  std::vector<Placement> placements;
  Placement current = optim::initial_placement(system);
  Rng rng(seed);
  const optim::SaConfig cfg;
  for (int i = 0; i < count; ++i) {
    Placement next;
    if (optim::propose_move(system, current, rng, cfg, next)) current = next;
    placements.push_back(current);
  }
  return placements;
}

void expect_workspace_matches_fresh(const EdgeSystem& system,
                                    const Placement& placement,
                                    FeatureMode mode, GraphWorkspace& ws) {
  const PlacementGraph fresh = build_graph(system, placement, mode);
  const PlacementGraph& reused = build_graph(system, placement, mode, ws);
  EXPECT_TRUE(fresh == reused);
}

TEST(GraphWorkspace, MatchesFreshBuildAcrossWalk) {
  const auto system = generated_system(42);
  const auto placements = walk(system, 40, 17);
  for (const FeatureMode mode :
       {FeatureMode::kModified, FeatureMode::kOriginal}) {
    GraphWorkspace ws;  // one workspace reused for the whole walk
    for (const auto& p : placements) {
      expect_workspace_matches_fresh(system, p, mode, ws);
    }
  }
}

TEST(GraphWorkspace, SurvivesSystemSwitch) {
  // Reusing one workspace across systems of different sizes must still
  // reproduce fresh builds: all sizing arrays are re-derived per build.
  const auto big = generated_system(42, 24);
  const auto small = small_system();
  GraphWorkspace ws;
  expect_workspace_matches_fresh(big, walk(big, 1, 3).front(),
                                 FeatureMode::kModified, ws);
  expect_workspace_matches_fresh(small, small_placement(),
                                 FeatureMode::kModified, ws);
  expect_workspace_matches_fresh(big, walk(big, 5, 5).back(),
                                 FeatureMode::kModified, ws);
}

TEST(GraphWorkspace, RepeatedBuildOfSamePlacementIsStable) {
  const auto system = small_system();
  GraphWorkspace ws;
  const PlacementGraph fresh =
      build_graph(system, small_placement(), FeatureMode::kModified);
  for (int i = 0; i < 3; ++i) {
    const PlacementGraph& reused =
        build_graph(system, small_placement(), FeatureMode::kModified, ws);
    EXPECT_TRUE(fresh == reused) << "rebuild " << i;
  }
}

TEST(GraphWorkspace, ReturnsItsOwnGraph) {
  // The reference returned is ws.graph itself — the documented lifetime.
  const auto system = small_system();
  GraphWorkspace ws;
  const PlacementGraph& reused =
      build_graph(system, small_placement(), FeatureMode::kModified, ws);
  EXPECT_EQ(&reused, &ws.graph);
}

}  // namespace
}  // namespace chainnet::edge
