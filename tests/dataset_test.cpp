#include "gnn/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "test_util.h"

namespace chainnet::gnn {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;

LabelingConfig fast_labeling() {
  LabelingConfig cfg;
  cfg.arrivals_per_chain = 300.0;
  cfg.seed = 5;
  return cfg;
}

TEST(LabelSample, ProducesConsistentGroundTruth) {
  const auto s = label_sample(small_system(), small_placement(),
                              fast_labeling());
  ASSERT_EQ(s.throughput.size(), 2u);
  // Lightly loaded system: throughput close to arrival rates.
  EXPECT_NEAR(s.throughput[0], 0.8, 0.1);
  EXPECT_NEAR(s.throughput[1], 0.4, 0.1);
  EXPECT_TRUE(s.has_latency[0]);
  // Latency at least the total processing time.
  EXPECT_GE(s.latency[0], 1.0);
  // Graphs built for both feature modes.
  EXPECT_EQ(s.graph_modified.num_nodes(), 11);
  EXPECT_EQ(s.graph_original.num_nodes(), 11);
  EXPECT_DOUBLE_EQ(s.graph(edge::FeatureMode::kOriginal)
                       .service_features[0][0],
                   0.8);
}

TEST(GenerateDataset, CountAndValidity) {
  const auto params = edge::NetworkGenParams::type1();
  const auto ds = generate_dataset(params, 12, fast_labeling(), 42);
  EXPECT_EQ(ds.size(), 12u);
  EXPECT_GE(ds.total_chains(), 12u);
  for (const auto& s : ds.samples) {
    EXPECT_NO_THROW(s.placement.validate(s.system));
    for (std::size_t i = 0; i < s.throughput.size(); ++i) {
      // Throughput can never exceed the arrival rate beyond the sampling
      // noise of the short labeling run (~300 arrivals -> a few percent).
      EXPECT_LE(s.throughput[i], s.system.chains[i].arrival_rate * 1.2);
      EXPECT_GE(s.throughput[i], 0.0);
    }
  }
}

TEST(GenerateDataset, DeterministicGivenSeed) {
  const auto params = edge::NetworkGenParams::type1();
  const auto a = generate_dataset(params, 3, fast_labeling(), 7);
  const auto b = generate_dataset(params, 3, fast_labeling(), 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.samples[i].placement.assignment(),
              b.samples[i].placement.assignment());
    EXPECT_EQ(a.samples[i].throughput, b.samples[i].throughput);
  }
}

TEST(DatasetIo, RoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "chainnet_ds_test.bin")
          .string();
  const auto params = edge::NetworkGenParams::type1();
  const auto original = generate_dataset(params, 5, fast_labeling(), 9);
  save_dataset(original, path);
  EXPECT_TRUE(dataset_file_exists(path));
  const auto loaded = load_dataset(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& a = original.samples[i];
    const auto& b = loaded.samples[i];
    EXPECT_EQ(a.placement.assignment(), b.placement.assignment());
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.has_latency, b.has_latency);
    EXPECT_EQ(a.system.chains.size(), b.system.chains.size());
    EXPECT_DOUBLE_EQ(a.system.chains[0].arrival_rate,
                     b.system.chains[0].arrival_rate);
    // Graphs are rebuilt on load.
    EXPECT_EQ(a.graph_modified.num_nodes(), b.graph_modified.num_nodes());
  }
  std::remove(path.c_str());
}

TEST(DatasetIo, MissingFileThrows) {
  EXPECT_THROW(load_dataset("/nonexistent/dataset.bin"), std::runtime_error);
  EXPECT_FALSE(dataset_file_exists("/nonexistent/dataset.bin"));
}

TEST(LabelSample, OverloadedChainHasLowThroughputRatio) {
  auto sys = small_system();
  sys.chains[0].arrival_rate = 10.0;  // far above service capacity
  const auto s =
      label_sample(std::move(sys), small_placement(), fast_labeling());
  EXPECT_LT(s.throughput[0], 4.0);  // heavy loss
}

}  // namespace
}  // namespace chainnet::gnn
