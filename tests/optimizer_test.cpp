#include "tensor/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace chainnet::tensor {
namespace {

using chainnet::support::Rng;

/// A module exposing one free parameter vector for optimizer tests.
class FreeParams : public Module {
 public:
  explicit FreeParams(std::vector<double> init) {
    var_ = register_zeros("theta", Shape{init.size(), 1});
    std::copy(init.begin(), init.end(), var_.mutable_value().begin());
  }
  Var var() { return var_; }

 private:
  Var var_;
};

TEST(LrSchedule, StepDecay) {
  LrSchedule sched(0.001, 0.9, 10);
  EXPECT_DOUBLE_EQ(sched.lr_at(0), 0.001);
  EXPECT_DOUBLE_EQ(sched.lr_at(9), 0.001);
  EXPECT_NEAR(sched.lr_at(10), 0.0009, 1e-12);
  EXPECT_NEAR(sched.lr_at(25), 0.001 * 0.81, 1e-12);
}

TEST(LrSchedule, RejectsInvalid) {
  EXPECT_THROW(LrSchedule(0.0, 0.9, 10), std::invalid_argument);
  EXPECT_THROW(LrSchedule(0.1, -1.0, 10), std::invalid_argument);
  EXPECT_THROW(LrSchedule(0.1, 0.9, 0), std::invalid_argument);
}

TEST(Sgd, ConvergesOnQuadratic) {
  FreeParams m({5.0, -3.0});
  Sgd sgd(m.parameters(), 0.1);
  for (int i = 0; i < 200; ++i) {
    m.zero_grad();
    auto loss = mean(mul(m.var(), m.var()));
    loss.backward();
    sgd.step();
  }
  EXPECT_NEAR(m.var().value()[0], 0.0, 1e-6);
  EXPECT_NEAR(m.var().value()[1], 0.0, 1e-6);
}

TEST(Sgd, SingleStepIsGradientTimesLr) {
  FreeParams m({2.0});
  Sgd sgd(m.parameters(), 0.5);
  m.zero_grad();
  auto loss = mean(mul(m.var(), m.var()));  // d/dx x^2 = 2x = 4
  loss.backward();
  sgd.step();
  EXPECT_NEAR(m.var().value()[0], 2.0 - 0.5 * 4.0, 1e-12);
}

TEST(Adam, ConvergesOnShiftedQuadratic) {
  FreeParams m({0.0, 0.0});
  Adam adam(m.parameters(), 0.05);
  const std::vector<double> target = {3.0, -1.5};
  for (int i = 0; i < 2000; ++i) {
    m.zero_grad();
    auto t = Var::vector(target);
    auto loss = mse(m.var(), t);
    loss.backward();
    adam.step();
  }
  EXPECT_NEAR(m.var().value()[0], 3.0, 1e-3);
  EXPECT_NEAR(m.var().value()[1], -1.5, 1e-3);
}

TEST(Adam, FirstStepIsLrSized) {
  // With bias correction, the first Adam step has magnitude ~lr regardless
  // of gradient scale.
  FreeParams m({100.0});
  Adam adam(m.parameters(), 0.01);
  m.zero_grad();
  auto loss = mean(mul(m.var(), m.var()));
  loss.backward();
  adam.step();
  EXPECT_NEAR(m.var().value()[0], 100.0 - 0.01, 1e-6);
}

TEST(Adam, SetLrTakesEffect) {
  FreeParams m({1.0});
  Adam adam(m.parameters(), 1e-9);
  m.zero_grad();
  mean(mul(m.var(), m.var())).backward();
  adam.set_lr(0.5);
  adam.step();
  EXPECT_NEAR(m.var().value()[0], 0.5, 1e-6);
}

}  // namespace
}  // namespace chainnet::tensor
