// Versioned model registry: checksum gating, the LOADING -> ACTIVE ->
// DRAINING -> RETIRED state machine, and — the property the whole design
// exists for — hot-swap atomicity: a concurrent reader only ever observes
// a fully-loaded version's output, bit-for-bit, never a half-loaded model.
#include "serve/registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/chainnet.h"
#include "edge/problem.h"
#include "support/rng.h"
#include "tensor/serialize.h"

namespace chainnet::serve {
namespace {

using tensor::SerializeErrc;
using tensor::SerializeError;
using tensor::WeightsManifest;

core::ChainNetConfig small_config() {
  core::ChainNetConfig config;
  config.hidden = 8;
  config.iterations = 1;
  return config;
}

/// Writes a params file + matching manifest for a freshly-initialized model
/// seeded with `seed`, returning the manifest path. Distinct seeds give
/// distinct weights, hence distinct surrogate outputs.
std::string write_version(const std::filesystem::path& dir,
                          std::uint32_t version, std::uint64_t seed) {
  std::filesystem::create_directories(dir);
  support::Rng rng(seed);
  core::ChainNet model(small_config(), rng);
  const auto params = dir / ("weights_v" + std::to_string(version) + ".bin");
  tensor::save_parameters(model, params.string());

  WeightsManifest manifest;
  manifest.version = version;
  manifest.params_path = params.filename().string();
  manifest.checksum = tensor::file_checksum(params.string());
  manifest.hidden = small_config().hidden;
  manifest.iterations = small_config().iterations;
  const auto path = dir / ("v" + std::to_string(version) + ".json");
  tensor::save_manifest(manifest, path.string());
  return path.string();
}

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(Registry, LoadFlipsActiveAndReportsIdentity) {
  TempDir dir("chainnet_registry_load");
  const auto manifest = write_version(dir.path, 1, 11);
  ModelRegistry registry(small_config(), 2);
  EXPECT_EQ(registry.active(), nullptr);
  EXPECT_EQ(registry.active_info().state, "");

  const auto info = registry.load(manifest);
  EXPECT_EQ(info.version, 1u);
  EXPECT_EQ(info.state, "active");
  ASSERT_NE(registry.active(), nullptr);
  EXPECT_EQ(registry.active()->manifest().version, 1u);
  EXPECT_EQ(registry.active_info().checksum, info.checksum);

  const auto stats = registry.stats_json();
  ASSERT_TRUE(stats.has("active"));
  EXPECT_EQ(stats.at("active").at("version").as_number(), 1.0);
}

TEST(Registry, ChecksumMismatchRejectsBeforeAnyParse) {
  TempDir dir("chainnet_registry_checksum");
  const auto manifest_path = write_version(dir.path, 1, 11);
  // Corrupt the weights AFTER the manifest recorded their checksum.
  {
    std::ofstream out(dir.path / "weights_v1.bin",
                      std::ios::binary | std::ios::app);
    out << "trailing garbage";
  }
  ModelRegistry registry(small_config(), 1);
  try {
    registry.load(manifest_path);
    FAIL() << "expected checksum_mismatch";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.code(), SerializeErrc::kChecksumMismatch);
  }
  // A gated version never became a record, let alone active.
  EXPECT_EQ(registry.active(), nullptr);
  EXPECT_TRUE(registry.versions().empty());
}

TEST(Registry, FailedLoadLeavesActiveVersionServing) {
  TempDir dir("chainnet_registry_failed");
  const auto good = write_version(dir.path, 1, 11);
  ModelRegistry registry(small_config(), 1);
  registry.load(good);

  // A manifest whose checksum honestly matches a garbage params file: the
  // gate passes, the host thread's load_parameters fails.
  const auto garbage = dir.path / "garbage.bin";
  { std::ofstream(garbage, std::ios::binary) << "XXXX not weights"; }
  WeightsManifest manifest;
  manifest.version = 2;
  manifest.params_path = garbage.filename().string();
  manifest.checksum = tensor::file_checksum(garbage.string());
  const auto bad_path = (dir.path / "v2.json").string();
  tensor::save_manifest(manifest, bad_path);

  EXPECT_THROW(registry.load(bad_path), SerializeError);
  ASSERT_NE(registry.active(), nullptr);
  EXPECT_EQ(registry.active()->manifest().version, 1u);
  const auto versions = registry.versions();
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].state, "active");
  EXPECT_EQ(versions[1].state, "failed");
}

TEST(Registry, StateMachineDrainsThenRetires) {
  TempDir dir("chainnet_registry_states");
  const auto v1 = write_version(dir.path, 1, 11);
  const auto v2 = write_version(dir.path, 2, 22);
  ModelRegistry registry(small_config(), 1);
  registry.load(v1);

  // Pin v1 the way an in-flight batch would, then flip to v2.
  auto pinned = registry.active();
  registry.load(v2);
  {
    const auto versions = registry.versions();
    ASSERT_EQ(versions.size(), 2u);
    EXPECT_EQ(versions[0].state, "draining");  // alive only through the pin
    EXPECT_EQ(versions[1].state, "active");
  }
  pinned.reset();  // the "batch" completes
  {
    const auto versions = registry.versions();
    EXPECT_EQ(versions[0].state, "retired");
    EXPECT_EQ(versions[1].state, "active");
  }
  EXPECT_EQ(registry.active_info().version, 2u);
}

TEST(Registry, HotSwapIsAtomicUnderConcurrentReads) {
  TempDir dir("chainnet_registry_swap");
  const auto v1 = write_version(dir.path, 1, 11);
  const auto v2 = write_version(dir.path, 2, 22);

  support::Rng gen_rng(5);
  const auto system = edge::generate_placement_problem(
      edge::PlacementProblemParams::paper(13), gen_rng);
  support::Rng placement_rng(7);
  const auto placement = edge::random_placement(system, placement_rng);

  auto registry = std::make_shared<ModelRegistry>(small_config(), 2);
  registry->load(v1);
  RegistryEvaluator reader(registry, 0);
  const double val1 = reader.total_throughput(system, placement);

  std::atomic<bool> stop{false};
  std::vector<double> observed;
  std::thread reader_thread([&] {
    RegistryEvaluator mine(registry, 1);  // slot 1: private to this thread
    while (!stop.load(std::memory_order_relaxed)) {
      observed.push_back(mine.total_throughput(system, placement));
    }
  });
  registry->load(v2);
  stop.store(true);
  reader_thread.join();
  const double val2 = reader.total_throughput(system, placement);
  ASSERT_NE(val1, val2) << "distinct weights must score differently";

  // Every concurrent read saw exactly v1's or v2's output — a half-loaded
  // model would produce some third value.
  ASSERT_FALSE(observed.empty());
  for (const double value : observed) {
    EXPECT_TRUE(value == val1 || value == val2) << value;
  }
}

TEST(Registry, EvaluatorWithoutActiveVersionThrows) {
  auto registry = std::make_shared<ModelRegistry>(small_config(), 1);
  RegistryEvaluator evaluator(registry, 0);
  support::Rng gen_rng(5);
  const auto system = edge::generate_placement_problem(
      edge::PlacementProblemParams::paper(13), gen_rng);
  support::Rng placement_rng(7);
  const auto placement = edge::random_placement(system, placement_rng);
  EXPECT_THROW(evaluator.total_throughput(system, placement),
               std::runtime_error);
}

TEST(Registry, FactoryHandsOutExactlySlotsEvaluators) {
  TempDir dir("chainnet_registry_factory");
  auto registry = std::make_shared<ModelRegistry>(small_config(), 2);
  registry->load(write_version(dir.path, 1, 11));
  auto factory = registry_factory(registry);
  EXPECT_NE(factory(support::Rng(1)), nullptr);
  EXPECT_NE(factory(support::Rng(2)), nullptr);
  EXPECT_THROW(factory(support::Rng(3)), std::runtime_error);
}

}  // namespace
}  // namespace chainnet::serve
