// Unit tests for chainnet_lint's analyzer internals: the hardened lexer
// (raw strings, digit separators, encoding prefixes), the per-TU program
// model (scoped definitions, guard regions, manual unlock splits), the
// call-graph builder (qualified-name resolution, overload collapse,
// unresolved calls), and the layer-spec parser. lint_test.cpp drives the
// binary end to end; this file pins the layers it is built from.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "callgraph.h"
#include "lexer.h"
#include "model.h"
#include "rules.h"
#include "xrules.h"

namespace {

using chainnet::lint::build_model;
using chainnet::lint::CallGraph;
using chainnet::lint::CallQual;
using chainnet::lint::FileLex;
using chainnet::lint::FileModel;
using chainnet::lint::Finding;
using chainnet::lint::FunctionDef;
using chainnet::lint::lex_source;
using chainnet::lint::LayerSpec;
using chainnet::lint::parse_layer_spec;
using chainnet::lint::TokKind;

std::vector<std::string> token_texts(const FileLex& lex) {
  std::vector<std::string> out;
  for (const auto& t : lex.tokens) out.push_back(t.text);
  return out;
}

bool has_token(const FileLex& lex, const std::string& text) {
  for (const auto& t : lex.tokens) {
    if (t.text == text) return true;
  }
  return false;
}

const FunctionDef* find_fn(const FileModel& m, const std::string& qualified) {
  for (const auto& fn : m.functions) {
    if (fn.qualified == qualified) return &fn;
  }
  return nullptr;
}

// --- lexer hardening ----------------------------------------------------

TEST(LexerTest, RawStringBodyEmitsNoTokens) {
  const FileLex lex = lex_source(
      "raw.cpp", "const char* s = R\"(new int[3] and mu_.lock())\";\n");
  EXPECT_FALSE(has_token(lex, "new"));
  EXPECT_FALSE(has_token(lex, "lock"));
  EXPECT_FALSE(has_token(lex, "mu_"));
}

TEST(LexerTest, DelimitedRawStringHonorsDelimiter) {
  const FileLex lex = lex_source(
      "raw.cpp", "const char* s = R\"x(a )\" b malloc(4))x\"; int after;\n");
  EXPECT_FALSE(has_token(lex, "malloc"));
  // Lexing resynchronizes after the close: the declaration still tokenizes.
  EXPECT_TRUE(has_token(lex, "after"));
}

TEST(LexerTest, PrefixedRawStringsAreSingleLiterals) {
  for (const char* prefix : {"u8R", "uR", "UR", "LR"}) {
    const std::string src = std::string("const void* s = ") + prefix +
                            "\"(new char[2] inside)\"; int tail;\n";
    const FileLex lex = lex_source("prefix.cpp", src);
    EXPECT_FALSE(has_token(lex, "new")) << prefix;
    EXPECT_FALSE(has_token(lex, "inside")) << prefix;
    EXPECT_TRUE(has_token(lex, "tail")) << prefix;
  }
}

TEST(LexerTest, EncodingPrefixedPlainLiteralsEmitNoIdentifier) {
  const FileLex lex = lex_source(
      "prefix.cpp",
      "const void* a = L\"new int\"; char32_t c = U'x'; auto b = u8\"hi\";\n");
  EXPECT_FALSE(has_token(lex, "L"));
  EXPECT_FALSE(has_token(lex, "U"));
  EXPECT_FALSE(has_token(lex, "u8"));
  EXPECT_FALSE(has_token(lex, "new"));
  EXPECT_FALSE(has_token(lex, "hi"));
}

TEST(LexerTest, DigitSeparatorsStayOneToken) {
  const FileLex lex =
      lex_source("digits.cpp", "long n = 1'000'000 + 0xFF'00u; int z;\n");
  const std::vector<std::string> texts = token_texts(lex);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "1'000'000"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "0xFF'00u"), texts.end());
  EXPECT_TRUE(has_token(lex, "z"));  // the ' did not swallow the rest
}

// --- program model ------------------------------------------------------

constexpr const char* kModelSource = R"cpp(
namespace outer {
class Widget {
 public:
  void poke() {
    std::lock_guard<std::mutex> hold(mu_);
    jiggle();
  }
  void jiggle();
 private:
  std::mutex mu_;
};
void Widget::jiggle() { helper(); }
int helper() { return 1; }
}  // namespace outer
)cpp";

TEST(ModelTest, QualifiedNamesJoinInClassAndOutOfLineDefs) {
  const FileModel m = build_model(lex_source("w.cpp", kModelSource));
  ASSERT_NE(find_fn(m, "outer::Widget::poke"), nullptr);
  ASSERT_NE(find_fn(m, "outer::Widget::jiggle"), nullptr);
  ASSERT_NE(find_fn(m, "outer::helper"), nullptr);
  EXPECT_EQ(find_fn(m, "outer::Widget::poke")->owner, "outer::Widget");
  EXPECT_TRUE(find_fn(m, "outer::helper")->owner.empty());
}

TEST(ModelTest, GuardRegionCarriesQualifiedMutexKey) {
  const FileModel m = build_model(lex_source("w.cpp", kModelSource));
  const FunctionDef* poke = find_fn(m, "outer::Widget::poke");
  ASSERT_NE(poke, nullptr);
  ASSERT_EQ(poke->guards.size(), 1u);
  ASSERT_EQ(poke->guards[0].mutexes.size(), 1u);
  EXPECT_EQ(poke->guards[0].mutexes[0], "outer::Widget::mu_");
  ASSERT_EQ(poke->guards[0].segments.size(), 1u);
}

TEST(ModelTest, ManualUnlockSplitsTheGuardRegion) {
  const FileModel m = build_model(lex_source("f.cpp", R"cpp(
struct Flusher {
  void flush() {
    std::unique_lock<std::mutex> lk(mu_);
    int batch = n_;
    lk.unlock();
    expensive(batch);
    lk.lock();
    n_ = 0;
  }
  void expensive(int);
  std::mutex mu_;
  int n_ = 0;
};
)cpp"));
  const FunctionDef* flush = find_fn(m, "Flusher::flush");
  ASSERT_NE(flush, nullptr);
  ASSERT_EQ(flush->guards.size(), 1u);
  // Two live segments: before unlock and after relock; the expensive call
  // sits in neither.
  ASSERT_EQ(flush->guards[0].segments.size(), 2u);
  std::size_t call_token = 0;
  for (const auto& call : flush->calls) {
    if (call.name == "expensive") call_token = call.token;
  }
  ASSERT_GT(call_token, 0u);
  for (const auto& seg : flush->guards[0].segments) {
    EXPECT_FALSE(call_token >= seg.begin && call_token < seg.end);
  }
}

TEST(ModelTest, CallSitesClassifyQualification) {
  const FileModel m = build_model(lex_source("c.cpp", R"cpp(
void caller() {
  plain();
  obj.method();
  a::b::qualified();
}
)cpp"));
  const FunctionDef* caller = find_fn(m, "caller");
  ASSERT_NE(caller, nullptr);
  ASSERT_EQ(caller->calls.size(), 3u);
  EXPECT_EQ(caller->calls[0].qual, CallQual::kUnqualified);
  EXPECT_EQ(caller->calls[1].qual, CallQual::kMember);
  EXPECT_EQ(caller->calls[1].qualifier, "obj");
  EXPECT_EQ(caller->calls[2].qual, CallQual::kQualified);
  EXPECT_EQ(caller->calls[2].qualifier, "a::b");
}

TEST(ModelTest, ModuleOfFindsComponentAfterSrc) {
  EXPECT_EQ(chainnet::lint::module_of("src/gnn/model.h"), "gnn");
  EXPECT_EQ(chainnet::lint::module_of("/repo/src/serve/server.cpp"),
            "serve");
  EXPECT_EQ(chainnet::lint::module_of("tools/lint/lexer.cpp"), "");
}

// --- call graph ---------------------------------------------------------

std::vector<FileModel> two_file_models() {
  std::vector<FileModel> files;
  files.push_back(build_model(lex_source("a.cpp", R"cpp(
namespace app {
struct Engine {
  void start() { spin_up(); }
  void spin_up();
};
void Engine::spin_up() {}
void free_fn() {}
void free_fn(int) {}
}  // namespace app
)cpp")));
  files.push_back(build_model(lex_source("b.cpp", R"cpp(
namespace app {
void driver() {
  Engine e;
  e.start();
  free_fn();
  app::free_fn(1);
  totally_unknown();
}
}  // namespace app
)cpp")));
  return files;
}

TEST(CallGraphTest, OverloadsCollapseIntoOneGroup) {
  const std::vector<FileModel> files = two_file_models();
  const CallGraph graph(files);
  const std::size_t g = graph.group_of("app::free_fn");
  ASSERT_NE(g, CallGraph::npos);
  EXPECT_EQ(graph.groups()[g].defs.size(), 2u);  // both overloads
}

TEST(CallGraphTest, QualifiedCallResolvesBySuffixAtBoundary) {
  const std::vector<FileModel> files = two_file_models();
  const CallGraph graph(files);
  const FunctionDef* driver = find_fn(files[1], "app::driver");
  ASSERT_NE(driver, nullptr);
  for (const auto& call : driver->calls) {
    if (call.qual != CallQual::kQualified) continue;
    const auto targets = graph.resolve(*driver, call);
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(graph.groups()[targets[0]].qualified, "app::free_fn");
  }
}

TEST(CallGraphTest, MemberCallResolvesToClassMethods) {
  const std::vector<FileModel> files = two_file_models();
  const CallGraph graph(files);
  const FunctionDef* driver = find_fn(files[1], "app::driver");
  ASSERT_NE(driver, nullptr);
  bool saw_start = false;
  for (const auto& call : driver->calls) {
    if (call.name != "start") continue;
    const auto targets = graph.resolve(*driver, call);
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(graph.groups()[targets[0]].qualified, "app::Engine::start");
    saw_start = true;
  }
  EXPECT_TRUE(saw_start);
}

TEST(CallGraphTest, UnresolvedCallContributesNoEdges) {
  const std::vector<FileModel> files = two_file_models();
  const CallGraph graph(files);
  const FunctionDef* driver = find_fn(files[1], "app::driver");
  ASSERT_NE(driver, nullptr);
  for (const auto& call : driver->calls) {
    if (call.name != "totally_unknown") continue;
    EXPECT_TRUE(graph.resolve(*driver, call).empty());
  }
}

TEST(CallGraphTest, AtomicReceiverIsNeverAUserMethod) {
  std::vector<FileModel> files;
  files.push_back(build_model(lex_source("reg.cpp", R"cpp(
struct Registry {
  void load() {}
};
struct Conn {
  std::atomic<bool> done;
};
void reaper(Conn& c) {
  if (c.done.load()) return;
}
)cpp")));
  const CallGraph graph(files);
  const FunctionDef* reaper = find_fn(files[0], "reaper");
  ASSERT_NE(reaper, nullptr);
  for (const auto& call : reaper->calls) {
    if (call.name != "load") continue;
    EXPECT_TRUE(graph.resolve(*reaper, call).empty())
        << "atomic .load() resolved to Registry::load";
  }
}

// --- layer spec ---------------------------------------------------------

TEST(LayerSpecTest, ClosureIsReflexiveAndTransitive) {
  const LayerSpec spec = parse_layer_spec("layers.spec",
                                          "base:\nmid: base\ntop: mid\n");
  EXPECT_TRUE(spec.errors.empty());
  const auto& top = spec.closure.at("top");
  EXPECT_EQ(top.count("top"), 1u);
  EXPECT_EQ(top.count("mid"), 1u);
  EXPECT_EQ(top.count("base"), 1u);  // transitive through mid
  EXPECT_EQ(spec.closure.at("base").count("mid"), 0u);
}

TEST(LayerSpecTest, WaiveLineParsesWithReason) {
  const LayerSpec spec = parse_layer_spec(
      "layers.spec", "a:\nb: a\nwaive a -> b pending interface hoist\n");
  EXPECT_TRUE(spec.errors.empty());
  ASSERT_EQ(spec.waived.size(), 1u);
  EXPECT_EQ(spec.waived.begin()->second, "pending interface hoist");
}

TEST(LayerSpecTest, MalformedLinesBecomeFindings) {
  const LayerSpec missing_reason =
      parse_layer_spec("layers.spec", "a:\nb: a\nwaive a -> b\n");
  ASSERT_EQ(missing_reason.errors.size(), 1u);
  EXPECT_EQ(missing_reason.errors[0].rule, "R8-layering");

  const LayerSpec undeclared = parse_layer_spec("layers.spec", "a: ghost\n");
  ASSERT_FALSE(undeclared.errors.empty());

  const LayerSpec cyclic =
      parse_layer_spec("layers.spec", "a: b\nb: a\n");
  ASSERT_FALSE(cyclic.errors.empty());
}

// --- cross-file rules as a library --------------------------------------

TEST(XRulesTest, InterproceduralDeadlockReportsWitness) {
  std::vector<FileModel> files;
  files.push_back(build_model(lex_source("dl.cpp", R"cpp(
class Pair {
 public:
  void fwd() {
    std::lock_guard<std::mutex> a(mu_a_);
    take_b();
  }
  void rev() {
    std::lock_guard<std::mutex> b(mu_b_);
    std::lock_guard<std::mutex> a(mu_a_);
  }
 private:
  void take_b() { std::lock_guard<std::mutex> b(mu_b_); }
  std::mutex mu_a_;
  std::mutex mu_b_;
};
)cpp")));
  const std::vector<Finding> findings =
      chainnet::lint::run_cross_file_rules(files, nullptr);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R9-lock-order");
  // The witness names both acquisition chains, including the call hop.
  EXPECT_NE(findings[0].message.find("'Pair::fwd' calls 'Pair::take_b'"),
            std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("Pair::mu_a_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Pair::mu_b_"), std::string::npos);
}

}  // namespace
