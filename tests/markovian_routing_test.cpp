// Tests for the Markovian-routing extension (paper §X future work): jobs
// route probabilistically between steps, including branches and rework
// cycles; expected visit counts follow (I - P)^-1 applied to the entry
// distribution.
#include <gtest/gtest.h>

#include <memory>

#include "queueing/network.h"
#include "queueing/simulator.h"

namespace chainnet::queueing {
namespace {

using support::Exponential;

QnModel base_model(int steps, double lambda = 1.0) {
  QnModel qn;
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(1.0 / lambda);
  for (int s = 0; s < steps; ++s) {
    qn.stations.push_back({"s" + std::to_string(s), 1e6});
    chain.steps.emplace_back(s, std::make_unique<Exponential>(0.05), 1.0);
  }
  qn.chains.push_back(std::move(chain));
  return qn;
}

TEST(MarkovianRouting, ValidateChecksMatrixShapeAndStochasticity) {
  auto qn = base_model(2);
  qn.chains[0].routing = {{0.0, 0.5, 0.5}};  // wrong row count
  EXPECT_THROW(qn.validate(), std::invalid_argument);
  qn.chains[0].routing = {{0.0, 0.5}, {0.0, 1.0}};  // wrong column count
  EXPECT_THROW(qn.validate(), std::invalid_argument);
  qn.chains[0].routing = {{0.0, 0.5, 0.4}, {0.0, 0.0, 1.0}};  // sums != 1
  EXPECT_THROW(qn.validate(), std::invalid_argument);
  qn.chains[0].routing = {{0.0, 0.5, 0.5}, {0.0, 0.0, 1.0}};
  EXPECT_NO_THROW(qn.validate());
}

TEST(MarkovianRouting, DeterministicMatrixMatchesChainRouting) {
  // Routing j -> j+1 with probability 1 reproduces the default chain.
  auto chain_qn = base_model(2);
  auto matrix_qn = base_model(2);
  matrix_qn.chains[0].routing = {{0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}};
  SimConfig cfg;
  cfg.horizon = 100000.0;
  cfg.seed = 3;
  const auto a = simulate(chain_qn, cfg);
  const auto b = simulate(matrix_qn, cfg);
  EXPECT_NEAR(a.chains[0].throughput, b.chains[0].throughput, 0.02);
  EXPECT_NEAR(a.chains[0].mean_latency, b.chains[0].mean_latency, 0.05);
}

TEST(MarkovianRouting, BranchSplitsVisits) {
  // Step 0 branches to step 1 or step 2 with probability 1/2 each; both
  // then complete. Visit ratio at stations 1 and 2 should be ~1:1, and
  // each sees half the flow of station 0.
  auto qn = base_model(3);
  qn.chains[0].routing = {
      {0.0, 0.5, 0.5, 0.0},
      {0.0, 0.0, 0.0, 1.0},
      {0.0, 0.0, 0.0, 1.0},
  };
  SimConfig cfg;
  cfg.horizon = 200000.0;
  cfg.seed = 5;
  const auto r = simulate(qn, cfg);
  const double s0 = static_cast<double>(r.stations[0].admitted);
  EXPECT_NEAR(static_cast<double>(r.stations[1].admitted) / s0, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(r.stations[2].admitted) / s0, 0.5, 0.02);
  EXPECT_NEAR(r.chains[0].throughput, 1.0, 0.03);
}

TEST(MarkovianRouting, ReworkLoopVisitsFollowGeometricMean) {
  // Step 0 reworks itself with probability q: expected visits per job are
  // 1 / (1 - q) (geometric), visible in the station's admission count.
  const double q = 0.4;
  auto qn = base_model(1);
  qn.chains[0].routing = {{q, 1.0 - q}};
  SimConfig cfg;
  cfg.horizon = 200000.0;
  cfg.seed = 7;
  const auto r = simulate(qn, cfg);
  const double visits_per_job =
      static_cast<double>(r.stations[0].admitted) /
      static_cast<double>(r.chains[0].arrivals);
  EXPECT_NEAR(visits_per_job, 1.0 / (1.0 - q), 0.05);
  // All jobs eventually complete (no loss with huge buffers).
  EXPECT_NEAR(r.chains[0].throughput, 1.0, 0.03);
}

TEST(MarkovianRouting, TwoStepCycleMatchesLinearSystem) {
  // 0 -> 1 always; 1 -> 0 with probability 0.25, else complete. Expected
  // visits: v0 = 1 + 0.25 v1, v1 = v0 => v0 = v1 = 1/(1 - 0.25) = 4/3.
  auto qn = base_model(2);
  qn.chains[0].routing = {
      {0.0, 1.0, 0.0},
      {0.25, 0.0, 0.75},
  };
  SimConfig cfg;
  cfg.horizon = 200000.0;
  cfg.seed = 9;
  const auto r = simulate(qn, cfg);
  const double arrivals = static_cast<double>(r.chains[0].arrivals);
  EXPECT_NEAR(static_cast<double>(r.stations[0].admitted) / arrivals,
              4.0 / 3.0, 0.05);
  EXPECT_NEAR(static_cast<double>(r.stations[1].admitted) / arrivals,
              4.0 / 3.0, 0.05);
}

TEST(MarkovianRouting, LossStillAppliesOnRoutedHops) {
  // Branch into a zero-capacity-ish station: those jobs are lost.
  QnModel qn;
  qn.stations.push_back({"entry", 1e6});
  qn.stations.push_back({"tiny", 1.0});
  ChainSpec chain;
  chain.name = "c0";
  chain.interarrival = std::make_unique<Exponential>(1.0);
  chain.steps.emplace_back(0, std::make_unique<Exponential>(0.05), 1.0);
  chain.steps.emplace_back(1, std::make_unique<Exponential>(5.0), 1.0);
  chain.routing = {
      {0.0, 0.5, 0.5},
      {0.0, 0.0, 1.0},
  };
  qn.chains.push_back(std::move(chain));
  SimConfig cfg;
  cfg.horizon = 100000.0;
  cfg.seed = 11;
  const auto r = simulate(qn, cfg);
  // Half the jobs attempt the slow tiny station; most of those are lost.
  EXPECT_GT(r.chains[0].loss_probability, 0.3);
  EXPECT_LT(r.chains[0].loss_probability, 0.55);
}

}  // namespace
}  // namespace chainnet::queueing
