// Parameterized property sweep of the full search machinery on Table-VII
// style problems of increasing size: initial placement validity, move
// invariants along real trajectories, and monotonicity of the recorded
// best-so-far series — the invariants every bench run relies on.
#include <gtest/gtest.h>

#include "edge/problem.h"
#include "optim/annealing.h"
#include "optim/initial.h"
#include "support/rng.h"

namespace chainnet::optim {
namespace {

/// Deterministic, cheap stand-in objective (no simulation): negative sum
/// of squared device loads — favors balanced placements, so SA has a real
/// landscape to descend.
class BalanceEvaluator final : public PlacementEvaluator {
 public:
  double total_throughput(const edge::EdgeSystem& system,
                          const edge::Placement& placement) override {
    ++evaluations_;
    double score = 0.0;
    for (int k = 0; k < system.num_devices(); ++k) {
      const double load = placement.processing_load(system, k);
      score -= load * load;
    }
    return score;
  }
};

class SaProblemSweep : public ::testing::TestWithParam<int> {};

TEST_P(SaProblemSweep, SearchPreservesInvariantsAndImproves) {
  const int devices = GetParam();
  support::Rng rng(1000 + static_cast<std::uint64_t>(devices));
  const auto sys = edge::generate_placement_problem(
      edge::PlacementProblemParams::paper(devices), rng);
  const auto initial = initial_placement(sys);
  ASSERT_NO_THROW(initial.validate(sys));
  ASSERT_TRUE(initial.memory_feasible(sys));

  BalanceEvaluator eval;
  SaConfig sa;
  sa.max_steps = 80;
  sa.seed = 9;
  sa.record_best_placements = true;
  const auto result = anneal_trials(sys, initial, eval, sa, 2);

  // Best placement is valid and feasible.
  EXPECT_NO_THROW(result.best.validate(sys));
  EXPECT_TRUE(result.best.memory_feasible(sys));
  // Balancing objective improves over the greedy initial placement.
  BalanceEvaluator check;
  EXPECT_GE(result.best_objective,
            check.total_throughput(sys, initial) - 1e-9);
  // Recorded best series is monotone and placements align with it.
  ASSERT_EQ(result.best_placements.size(), result.trajectory.size());
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_GE(result.trajectory[i].best, result.trajectory[i - 1].best);
  }
  // The final recorded placement is the returned best.
  EXPECT_EQ(result.best_placements.back().assignment(),
            result.best.assignment());
}

INSTANTIATE_TEST_SUITE_P(TableViiSizes, SaProblemSweep,
                         ::testing::Values(20, 40, 80, 120));

TEST(SaSweep, MoveSweepOnLargeProblem) {
  support::Rng rng(77);
  const auto sys = edge::generate_placement_problem(
      edge::PlacementProblemParams::paper(80), rng);
  auto current = edge::random_placement(sys, rng);
  SaConfig sa;
  for (int n = 0; n < 200; ++n) {
    edge::Placement candidate;
    ASSERT_TRUE(propose_move(sys, current, rng, sa, candidate));
    ASSERT_TRUE(candidate.distinct_devices_within_chains());
    ASSERT_TRUE(candidate.memory_feasible(sys));
    current = std::move(candidate);
  }
}

}  // namespace
}  // namespace chainnet::optim
