#include "optim/annealing.h"

#include <gtest/gtest.h>

#include "optim/initial.h"
#include "test_util.h"

namespace chainnet::optim {
namespace {

using chainnet::testing::small_system;
using support::Rng;

/// An analytic toy evaluator: rewards placing every fragment on the
/// fastest device it can (objective = sum of 1/processing-time). Cheap and
/// deterministic, so SA behavior can be tested without simulation noise.
class ToyEvaluator final : public PlacementEvaluator {
 public:
  double total_throughput(const edge::EdgeSystem& system,
                          const edge::Placement& placement) override {
    record_evaluation();
    double total = 0.0;
    for (int i = 0; i < system.num_chains(); ++i) {
      for (int j = 0; j < system.chains[i].length(); ++j) {
        total += 1.0 / system.processing_time(i, j, placement.device_of(i, j));
      }
    }
    return total;
  }
};

SaConfig quick_sa(int steps = 60) {
  SaConfig cfg;
  cfg.max_steps = steps;
  cfg.seed = 11;
  return cfg;
}

TEST(ProposeMove, PreservesInvariants) {
  const auto sys = small_system();
  auto current = initial_placement(sys);
  Rng rng(5);
  const auto cfg = quick_sa();
  // Sweep many proposals: every candidate must stay valid and feasible and
  // differ from the current placement.
  for (int n = 0; n < 300; ++n) {
    edge::Placement candidate;
    ASSERT_TRUE(propose_move(sys, current, rng, cfg, candidate));
    EXPECT_NO_THROW(candidate.validate(sys));
    EXPECT_TRUE(candidate.memory_feasible(sys));
    EXPECT_NE(candidate, current);
    current = candidate;  // random walk to diversify states
  }
}

TEST(ProposeMove, MovesExactlyOneFragmentOrSwaps) {
  const auto sys = small_system();
  const auto current = initial_placement(sys);
  Rng rng(7);
  const auto cfg = quick_sa();
  edge::Placement candidate;
  ASSERT_TRUE(propose_move(sys, current, rng, cfg, candidate));
  int diffs = 0;
  for (int i = 0; i < sys.num_chains(); ++i) {
    for (int j = 0; j < sys.chains[i].length(); ++j) {
      if (candidate.device_of(i, j) != current.device_of(i, j)) ++diffs;
    }
  }
  EXPECT_GE(diffs, 1);
}

TEST(Anneal, ImprovesToyObjective) {
  const auto sys = small_system();
  const auto initial = initial_placement(sys);
  ToyEvaluator eval;
  const double initial_obj = eval.total_throughput(sys, initial);
  const auto result = anneal(sys, initial, eval, quick_sa(150));
  EXPECT_GE(result.best_objective, initial_obj);
  EXPECT_GT(result.best_objective, initial_obj * 1.05);
  EXPECT_NO_THROW(result.best.validate(sys));
}

TEST(Anneal, TrajectoryRecordsEveryStep) {
  const auto sys = small_system();
  const auto initial = initial_placement(sys);
  ToyEvaluator eval;
  const auto cfg = quick_sa(40);
  const auto result = anneal(sys, initial, eval, cfg);
  ASSERT_EQ(result.trajectory.size(), 41u);  // step 0 plus 40 steps
  // best is monotone non-decreasing, seconds non-decreasing.
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_GE(result.trajectory[i].best, result.trajectory[i - 1].best);
    EXPECT_GE(result.trajectory[i].seconds,
              result.trajectory[i - 1].seconds);
    EXPECT_EQ(result.trajectory[i].step, static_cast<int>(i));
  }
  // best matches the returned placement's objective.
  EXPECT_DOUBLE_EQ(result.trajectory.back().best, result.best_objective);
}

TEST(Anneal, DeterministicGivenSeed) {
  const auto sys = small_system();
  const auto initial = initial_placement(sys);
  ToyEvaluator e1, e2;
  const auto a = anneal(sys, initial, e1, quick_sa());
  const auto b = anneal(sys, initial, e2, quick_sa());
  EXPECT_DOUBLE_EQ(a.best_objective, b.best_objective);
  EXPECT_EQ(a.best.assignment(), b.best.assignment());
}

TEST(AnnealTrials, ConcatenatesTrajectories) {
  const auto sys = small_system();
  const auto initial = initial_placement(sys);
  ToyEvaluator eval;
  const auto cfg = quick_sa(30);
  const auto result = anneal_trials(sys, initial, eval, cfg, 3);
  EXPECT_EQ(result.trials, 3);
  ASSERT_EQ(result.trajectory.size(), 1u + 3u * 30u);
  // Cumulative step axis and global best monotonicity across trials.
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_EQ(result.trajectory[i].step,
              result.trajectory[i - 1].step + 1);
    EXPECT_GE(result.trajectory[i].best, result.trajectory[i - 1].best);
  }
  EXPECT_THROW(anneal_trials(sys, initial, eval, cfg, 0),
               std::invalid_argument);
}

TEST(AnnealTrials, MultiStartAtLeastAsGoodAsSingle) {
  const auto sys = small_system();
  const auto initial = initial_placement(sys);
  ToyEvaluator e1, e2;
  const auto single = anneal(sys, initial, e1, quick_sa(30));
  SaConfig cfg = quick_sa(30);
  const auto multi = anneal_trials(sys, initial, e2, cfg, 5);
  EXPECT_GE(multi.best_objective, single.best_objective - 1e-12);
}

TEST(AnnealFor, RespectsTimeBudgetAndRunsAtLeastOnce) {
  const auto sys = small_system();
  const auto initial = initial_placement(sys);
  ToyEvaluator eval;
  const auto result = anneal_for(sys, initial, eval, quick_sa(10), 0.0);
  EXPECT_EQ(result.trials, 1);  // budget 0 still yields one trial
  ToyEvaluator eval2;
  const auto longer = anneal_for(sys, initial, eval2, quick_sa(10), 0.05);
  EXPECT_GE(longer.trials, 1);
}

TEST(Anneal, EvaluationCountMatchesAcceptedProposals) {
  const auto sys = small_system();
  const auto initial = initial_placement(sys);
  ToyEvaluator eval;
  const auto result = anneal(sys, initial, eval, quick_sa(25));
  // One initial evaluation plus at most one per step.
  EXPECT_GE(result.evaluations, 1u);
  EXPECT_LE(result.evaluations, 26u);
}

}  // namespace
}  // namespace chainnet::optim
