#include "runtime/eval_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "test_util.h"

namespace chainnet::runtime {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;

edge::Placement placement_of(int a, int b) {
  return edge::Placement(std::vector<std::vector<int>>{{a, b}});
}

TEST(PlacementHash, EqualPlacementsHashEqually) {
  EXPECT_EQ(small_placement().canonical_hash(),
            small_placement().canonical_hash());
  EXPECT_EQ(small_placement(), small_placement());
}

TEST(PlacementHash, SensitiveToAssignmentAndShape) {
  std::set<std::uint64_t> hashes;
  hashes.insert(placement_of(0, 1).canonical_hash());
  hashes.insert(placement_of(1, 0).canonical_hash());
  hashes.insert(placement_of(0, 2).canonical_hash());
  // Same flattened devices, different chain shape.
  hashes.insert(edge::Placement(std::vector<std::vector<int>>{{0}, {1}}).canonical_hash());
  hashes.insert(edge::Placement(std::vector<std::vector<int>>{{0, 1}, {2}}).canonical_hash());
  hashes.insert(edge::Placement(std::vector<std::vector<int>>{{0}, {1, 2}}).canonical_hash());
  EXPECT_EQ(hashes.size(), 6u);
}

TEST(EvalCache, MissThenHit) {
  EvalCache cache;
  const auto p = small_placement();
  EXPECT_FALSE(cache.lookup(p).has_value());
  cache.insert(p, 2.5);
  const auto hit = cache.lookup(p);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 2.5);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(EvalCache, InsertRefreshesInsteadOfDuplicating) {
  EvalCacheConfig config;
  config.capacity = 4;
  config.shards = 1;
  EvalCache cache(config);
  const auto p = small_placement();
  cache.insert(p, 1.0);
  cache.insert(p, 3.0);
  EXPECT_DOUBLE_EQ(*cache.lookup(p), 3.0);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(EvalCache, EvictsLeastRecentlyUsed) {
  EvalCacheConfig config;
  config.capacity = 3;
  config.shards = 1;
  EvalCache cache(config);
  const auto p1 = placement_of(0, 1);
  const auto p2 = placement_of(0, 2);
  const auto p3 = placement_of(0, 3);
  const auto p4 = placement_of(1, 2);
  cache.insert(p1, 1.0);
  cache.insert(p2, 2.0);
  cache.insert(p3, 3.0);
  ASSERT_TRUE(cache.lookup(p1).has_value());  // p2 becomes LRU
  cache.insert(p4, 4.0);                      // evicts p2
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.lookup(p2).has_value());
  EXPECT_TRUE(cache.lookup(p1).has_value());
  EXPECT_TRUE(cache.lookup(p3).has_value());
  EXPECT_TRUE(cache.lookup(p4).has_value());
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(EvalCache, CollidingHashesAreDisambiguatedByEquality) {
  EvalCacheConfig config;
  config.capacity = 8;
  config.shards = 1;
  config.hash = [](const edge::Placement&) { return 42ULL; };  // all collide
  EvalCache cache(config);
  const auto p1 = placement_of(0, 1);
  const auto p2 = placement_of(1, 0);
  const auto p3 = placement_of(2, 3);
  cache.insert(p1, 1.0);
  cache.insert(p2, 2.0);
  cache.insert(p3, 3.0);
  EXPECT_DOUBLE_EQ(*cache.lookup(p1), 1.0);
  EXPECT_DOUBLE_EQ(*cache.lookup(p2), 2.0);
  EXPECT_DOUBLE_EQ(*cache.lookup(p3), 3.0);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(EvalCache, ClearEmptiesEveryShard) {
  EvalCache cache;
  for (int i = 0; i < 32; ++i) cache.insert(placement_of(i, i + 1), i);
  EXPECT_EQ(cache.stats().entries, 32u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.lookup(placement_of(0, 1)).has_value());
}

TEST(EvalCache, CapacityRespectedAcrossShards) {
  EvalCacheConfig config;
  config.capacity = 16;
  config.shards = 4;
  EvalCache cache(config);
  for (int i = 0; i < 500; ++i) cache.insert(placement_of(i, i + 1), i);
  EXPECT_LE(cache.stats().entries, 16u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(EvalCache, TinyCapacityClampsShardsToOne) {
  EvalCacheConfig config;
  config.capacity = 2;
  config.shards = 8;
  EvalCache cache(config);
  EXPECT_EQ(cache.shard_count(), 1u);
  EXPECT_EQ(cache.capacity(), 2u);
}

/// Deterministic toy oracle counting how often it is actually consulted.
class CountingEvaluator final : public optim::PlacementEvaluator {
 public:
  double total_throughput(const edge::EdgeSystem&,
                          const edge::Placement& placement) override {
    record_evaluation();
    return static_cast<double>(placement.canonical_hash() % 1000);
  }
};

TEST(CachedEvaluator, HitsDoNotCountAsOracleEvaluations) {
  const auto sys = small_system();
  const auto p = small_placement();
  auto cache = std::make_shared<EvalCache>();
  CachedEvaluator cached(std::make_unique<CountingEvaluator>(), cache);
  const double first = cached.total_throughput(sys, p);
  const double second = cached.total_throughput(sys, p);
  const double third = cached.total_throughput(sys, p);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_DOUBLE_EQ(first, third);
  EXPECT_EQ(cached.inner().evaluations(), 1u);  // oracle consulted once
  EXPECT_EQ(cached.evaluations(), 1u);          // misses only
  EXPECT_EQ(cached.cache_hits(), 2u);           // reported separately
}

TEST(CachedEvaluator, SharingOneCacheAcrossDecorators) {
  const auto sys = small_system();
  const auto p = small_placement();
  auto cache = std::make_shared<EvalCache>();
  CachedEvaluator a(std::make_unique<CountingEvaluator>(), cache);
  CachedEvaluator b(std::make_unique<CountingEvaluator>(), cache);
  a.total_throughput(sys, p);
  const double via_b = b.total_throughput(sys, p);  // served from a's work
  EXPECT_DOUBLE_EQ(via_b, *cache->lookup(p));
  EXPECT_EQ(b.evaluations(), 0u);
  EXPECT_EQ(b.cache_hits(), 1u);
}

TEST(SaturatingAdd, ClampsAtMax) {
  const auto max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(optim::saturating_add(2, 3), 5u);
  EXPECT_EQ(optim::saturating_add(max, 1), max);
  EXPECT_EQ(optim::saturating_add(max - 1, 1), max);
  EXPECT_EQ(optim::saturating_add(1, max), max);
}

}  // namespace
}  // namespace chainnet::runtime
