// Bit-exactness contract of the batched and fused inference paths:
//  * forward_values_batch column b must equal forward_values on graphs[b]
//    EXACTLY (EXPECT_EQ on doubles) for B in {1, 2, 7, 32}, on every
//    ablation configuration — the lock-stepped batch-major engine may not
//    perturb a single placement's numbers;
//  * the fused-kernel path must equal the pre-fusion reference path
//    (fused_kernels = false) exactly, including after parameters mutate
//    (exercising the packed-weight version check);
//  * batches mixing placements of different systems must be rejected with
//    the typed gnn::MixedBatchError.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/chainnet.h"
#include "core/surrogate.h"
#include "edge/graph.h"
#include "edge/problem.h"
#include "gnn/model.h"
#include "optim/evaluator.h"
#include "runtime/eval_service.h"
#include "runtime/thread_pool.h"
#include "support/rng.h"
#include "test_util.h"

namespace chainnet::core {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;
using support::Rng;

edge::EdgeSystem medium_system(std::uint64_t seed) {
  auto params = edge::PlacementProblemParams::paper(16);
  Rng rng(seed);
  return edge::generate_placement_problem(params, rng);
}

std::vector<edge::Placement> random_placements(const edge::EdgeSystem& system,
                                               int count,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<edge::Placement> placements;
  placements.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    placements.push_back(edge::random_placement(system, rng));
  }
  return placements;
}

/// Batched forward over `placements` must reproduce the scalar forward of
/// every lane bit-for-bit.
void expect_batch_matches_scalar(ChainNet& model,
                                 const edge::EdgeSystem& system,
                                 std::span<const edge::Placement> placements) {
  std::vector<edge::PlacementGraph> graphs;
  graphs.reserve(placements.size());
  for (const auto& p : placements) {
    graphs.push_back(edge::build_graph(system, p, model.feature_mode()));
  }
  std::vector<const edge::PlacementGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  const auto batched = model.forward_values_batch(ptrs);
  ASSERT_EQ(batched.size(), graphs.size());
  for (std::size_t b = 0; b < graphs.size(); ++b) {
    const auto scalar = model.forward_values(graphs[b]);
    ASSERT_EQ(batched[b].size(), scalar.size()) << "lane " << b;
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      EXPECT_EQ(batched[b][i].has_throughput, scalar[i].has_throughput);
      EXPECT_EQ(batched[b][i].has_latency, scalar[i].has_latency);
      EXPECT_EQ(batched[b][i].throughput, scalar[i].throughput)
          << "lane " << b << " chain " << i;
      EXPECT_EQ(batched[b][i].latency, scalar[i].latency)
          << "lane " << b << " chain " << i;
    }
  }
}

struct NamedConfig {
  const char* name;
  ChainNetConfig cfg;
};

std::vector<NamedConfig> all_configs() {
  ChainNetConfig no_attention;
  no_attention.attention_aggregation = false;
  return {{"chainnet", ChainNetConfig{}},
          {"alpha", ChainNetConfig::ablation_alpha()},
          {"beta", ChainNetConfig::ablation_beta()},
          {"delta", ChainNetConfig::ablation_delta()},
          {"mean_agg", no_attention}};
}

class BatchSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(BatchSizeSweep, MatchesScalarOnEveryConfig) {
  const int batch = GetParam();
  const auto system = medium_system(42);
  const auto placements = random_placements(system, batch, 7);
  for (const auto& named : all_configs()) {
    auto cfg = named.cfg;
    cfg.hidden = 16;
    cfg.iterations = 3;
    Rng rng(3);
    ChainNet model(cfg, rng);
    SCOPED_TRACE(named.name);
    expect_batch_matches_scalar(model, system, placements);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatchSizeSweep,
                         ::testing::Values(1, 2, 7, 32));

TEST(ChainNetBatch, RepeatedLanesAgree) {
  // The same placement in several lanes must produce identical columns.
  const auto system = medium_system(42);
  const auto one = random_placements(system, 1, 9);
  std::vector<edge::Placement> repeated(5, one.front());
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  Rng rng(5);
  ChainNet model(cfg, rng);
  expect_batch_matches_scalar(model, system, repeated);
}

TEST(ChainNetBatch, MixedSystemsThrowTypedError) {
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  Rng rng(3);
  ChainNet model(cfg, rng);

  const auto sys_a = small_system();
  const auto g_a =
      edge::build_graph(sys_a, small_placement(), model.feature_mode());
  const auto sys_b = medium_system(42);
  const auto p_b = random_placements(sys_b, 1, 3).front();
  const auto g_b = edge::build_graph(sys_b, p_b, model.feature_mode());

  const edge::PlacementGraph* mixed[] = {&g_a, &g_b};
  EXPECT_THROW(model.forward_values_batch(mixed), gnn::MixedBatchError);

  // Same system twice is fine — the guard must not over-reject.
  const edge::PlacementGraph* same[] = {&g_a, &g_a};
  EXPECT_NO_THROW(model.forward_values_batch(same));
}

TEST(ChainNetBatch, EmptyAndNullBatchesAreRejected) {
  ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  Rng rng(3);
  ChainNet model(cfg, rng);
  EXPECT_THROW(model.forward_values_batch({}), std::invalid_argument);
  const edge::PlacementGraph* with_null[] = {nullptr};
  EXPECT_THROW(model.forward_values_batch(with_null), std::invalid_argument);
}

/// Two models built from identical seeds, one fused and one on the
/// pre-fusion reference path, must agree bit-for-bit: the packed-weight
/// kernels promise the same per-element accumulation chains as the naive
/// per-matrix GEMVs they replaced.
void expect_fused_matches_reference(const ChainNetConfig& base,
                                    const edge::EdgeSystem& system,
                                    std::span<const edge::Placement> placements) {
  auto fused_cfg = base;
  fused_cfg.fused_kernels = true;
  auto ref_cfg = base;
  ref_cfg.fused_kernels = false;
  Rng rng_fused(3), rng_ref(3);
  ChainNet fused(fused_cfg, rng_fused);
  ChainNet reference(ref_cfg, rng_ref);

  for (const auto& p : placements) {
    const auto g = edge::build_graph(system, p, fused.feature_mode());
    const auto a = fused.forward_values(g);
    const auto b = reference.forward_values(g);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].throughput, b[i].throughput) << "chain " << i;
      EXPECT_EQ(a[i].latency, b[i].latency) << "chain " << i;
    }
  }
}

TEST(ChainNetFusion, FusedMatchesReferenceOnEveryConfig) {
  const auto system = medium_system(42);
  const auto placements = random_placements(system, 4, 13);
  for (const auto& named : all_configs()) {
    auto cfg = named.cfg;
    cfg.hidden = 16;
    cfg.iterations = 3;
    SCOPED_TRACE(named.name);
    expect_fused_matches_reference(cfg, system, placements);
  }
}

TEST(ChainNetFusion, RepackAfterParameterMutation) {
  // Mutating a parameter in place must invalidate the packed GRU weights:
  // the fused model re-packs and keeps matching a reference model whose
  // parameters received the identical mutation.
  const auto system = medium_system(42);
  const auto placements = random_placements(system, 2, 21);
  ChainNetConfig fused_cfg;
  fused_cfg.hidden = 12;
  fused_cfg.iterations = 2;
  auto ref_cfg = fused_cfg;
  ref_cfg.fused_kernels = false;
  Rng rng_fused(3), rng_ref(3);
  ChainNet fused(fused_cfg, rng_fused);
  ChainNet reference(ref_cfg, rng_ref);

  const auto g =
      edge::build_graph(system, placements.front(), fused.feature_mode());
  // Warm pass so the fused model has packed its weights once.
  (void)fused.forward_values(g);

  auto fused_params = fused.parameters();
  auto ref_params = reference.parameters();
  ASSERT_EQ(fused_params.size(), ref_params.size());
  for (std::size_t k = 0; k < fused_params.size(); ++k) {
    auto fv = fused_params[k]->var.mutable_value();
    auto rv = ref_params[k]->var.mutable_value();
    ASSERT_EQ(fv.size(), rv.size());
    fv[0] += 0.25;
    rv[0] += 0.25;
  }

  for (const auto& p : placements) {
    const auto gp = edge::build_graph(system, p, fused.feature_mode());
    const auto a = fused.forward_values(gp);
    const auto b = reference.forward_values(gp);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].throughput, b[i].throughput) << "chain " << i;
      EXPECT_EQ(a[i].latency, b[i].latency) << "chain " << i;
    }
  }
}

TEST(ChainNetBatch, EvalServiceConcurrentBatchMatchesSerial) {
  // The full concurrent path: EvalService fans a batch out in chunks to
  // pool workers, each lock-stepping its sub-batch through one model. The
  // scores must equal a serial single-placement surrogate's, bit-for-bit —
  // regardless of how the batch was chunked across threads. (Also the TSan
  // coverage for the batched forward's thread-local scratch buffers.)
  const auto system = medium_system(42);
  const auto placements = random_placements(system, 32, 51);
  ChainNetConfig cfg;
  cfg.hidden = 12;
  cfg.iterations = 2;

  runtime::ThreadPool pool(4);
  runtime::EvalService service(
      pool,
      [cfg](support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
        struct Owning final : optim::PlacementEvaluator {
          explicit Owning(const ChainNetConfig& c)
              : rng(3), model(c, rng), eval(model) {}
          double total_throughput(const edge::EdgeSystem& s,
                                  const edge::Placement& p) override {
            record_evaluation();
            return eval.total_throughput(s, p);
          }
          void total_throughput_batch(const edge::EdgeSystem& s,
                                      std::span<const edge::Placement> ps,
                                      std::span<double> out) override {
            eval.total_throughput_batch(s, ps, out);
          }
          Rng rng;
          ChainNet model;
          Surrogate eval;
        };
        return std::make_unique<Owning>(cfg);
      },
      99);

  const auto concurrent = service.evaluate_batch(system, placements);
  Rng serial_rng(3);
  ChainNet serial_model(cfg, serial_rng);
  Surrogate serial(serial_model);
  ASSERT_EQ(concurrent.size(), placements.size());
  for (std::size_t b = 0; b < placements.size(); ++b) {
    EXPECT_EQ(concurrent[b], serial.total_throughput(system, placements[b]))
        << "lane " << b;
  }
}

TEST(ChainNetBatch, SurrogateBatchMatchesScalarObjective) {
  // End-to-end through the Surrogate wrapper (workspace graph builds plus
  // the batched forward): the batched objective must equal the scalar one.
  const auto system = medium_system(42);
  const auto placements = random_placements(system, 8, 31);
  ChainNetConfig cfg;
  cfg.hidden = 16;
  cfg.iterations = 3;
  Rng rng(3);
  ChainNet model(cfg, rng);
  Surrogate surrogate(model);
  std::vector<double> batched(placements.size());
  surrogate.total_throughput_batch(system, placements, batched);
  for (std::size_t b = 0; b < placements.size(); ++b) {
    EXPECT_EQ(batched[b], surrogate.total_throughput(system, placements[b]))
        << "lane " << b;
  }
}

}  // namespace
}  // namespace chainnet::core
