// Pins the arena tape's allocation-free steady state: once a training epoch
// or an inference pass has established capacity, repeating it must not grow
// the tape (ISSUE 2 acceptance criterion), and frame release must rewind
// usage exactly. Correctness under arena reuse is pinned alongside, since
// stale buffer contents are the classic failure mode of a bump allocator.
#include "tensor/tape.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/chainnet.h"
#include "gnn/baselines.h"
#include "gnn/trainer.h"
#include "tensor/variable.h"
#include "test_util.h"

namespace chainnet::tensor {
namespace {

using chainnet::testing::small_placement;
using chainnet::testing::small_system;
using support::Rng;

TEST(Tape, FrameReleaseRestoresUsage) {
  Tape& tape = Tape::current();
  const Var x = Var::leaf(Shape{4, 1}, {1.0, 2.0, 3.0, 4.0}, true);
  const std::size_t nodes_before = tape.node_count();
  const std::size_t used_before = tape.used_bytes();
  {
    const Tape::Frame frame(tape);
    Var loss = sum(mul(x, x));
    loss.backward();
    EXPECT_GT(tape.node_count(), nodes_before);
    EXPECT_GT(tape.used_bytes(), used_before);
  }
  EXPECT_EQ(tape.node_count(), nodes_before);
  EXPECT_EQ(tape.used_bytes(), used_before);
}

TEST(Tape, BackwardCorrectAfterArenaReuse) {
  // Rebuilding the same graph over released arena memory must produce the
  // same gradients: op buffers may not inherit stale data from the previous
  // pass, and leaf grads must keep accumulating across frames.
  Tape& tape = Tape::current();
  Var x = Var::leaf(Shape{3, 1}, {1.0, -2.0, 0.5}, true);
  const double xv[] = {1.0, -2.0, 0.5};
  for (int pass = 0; pass < 3; ++pass) {
    const Tape::Frame frame(tape);
    Var loss = sum(mul(x, x));
    loss.backward();
    // d(sum x^2)/dx = 2x, accumulated once per rebuilt graph.
    const double n = static_cast<double>(pass + 1);
    const auto g = x.grad();
    ASSERT_EQ(g.size(), 3u);
    EXPECT_DOUBLE_EQ(g[0], n * 2.0 * xv[0]);
    EXPECT_DOUBLE_EQ(g[1], n * 2.0 * xv[1]);
    EXPECT_DOUBLE_EQ(g[2], n * 2.0 * xv[2]);
  }
}

gnn::Dataset tiny_dataset(int count, std::uint64_t seed) {
  gnn::LabelingConfig cfg;
  cfg.arrivals_per_chain = 200.0;
  auto params = edge::NetworkGenParams::type1();
  params.max_devices = 6;
  params.max_fragments = 4;
  return gnn::generate_dataset(params, count, cfg, seed);
}

TEST(Tape, TrainerEpochsDoNotGrowTape) {
  const auto ds = tiny_dataset(10, 41);
  Rng rng(7);
  core::ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  core::ChainNet model(cfg, rng);

  gnn::TrainConfig tc;
  tc.epochs = 4;
  // One batch per epoch: every epoch builds the same graphs (modulo the
  // shuffled sample order inside the batch), so epoch 0 takes the tape — and
  // the backward DFS scratch, whose high-water mark depends on traversal
  // order — to capacity; every later epoch must run allocation-free.
  tc.batch_size = 64;
  std::vector<std::size_t> capacity;
  tc.on_epoch = [&capacity](int, double, double) {
    capacity.push_back(Tape::current().capacity_bytes());
  };
  gnn::train(model, ds, nullptr, tc);

  ASSERT_EQ(capacity.size(), 4u);
  EXPECT_EQ(capacity[2], capacity[1]);
  EXPECT_EQ(capacity[3], capacity[2]);
}

TEST(Tape, ChainNetForwardValuesBuildsNoTapeNodes) {
  Rng rng(9);
  core::ChainNetConfig cfg;
  cfg.hidden = 8;
  cfg.iterations = 2;
  core::ChainNet model(cfg, rng);
  const auto g = edge::build_graph(small_system(), small_placement(),
                                   model.feature_mode());

  Tape& tape = Tape::current();
  (void)model.forward_values(g);  // warm the inference workspace
  const std::size_t nodes = tape.node_count();
  const std::size_t capacity = tape.capacity_bytes();
  for (int i = 0; i < 3; ++i) {
    const auto values = model.forward_values(g);
    ASSERT_FALSE(values.empty());
  }
  // The raw-buffer path records nothing on the tape at all.
  EXPECT_EQ(tape.node_count(), nodes);
  EXPECT_EQ(tape.capacity_bytes(), capacity);
}

TEST(Tape, BaselineForwardValuesCapacityStable) {
  // Baselines go through the GraphModel::forward_values adapter, which does
  // build a graph — framed, so repeated calls rewind fully and the tape
  // stops growing after the first call.
  Rng rng(11);
  gnn::BaselineConfig cfg;
  cfg.hidden = 8;
  cfg.layers = 2;
  cfg.head = gnn::PredictionHead::kBoth;
  gnn::Gat model(cfg, rng);
  const auto g = edge::build_graph(small_system(), small_placement(),
                                   model.feature_mode());

  Tape& tape = Tape::current();
  const std::size_t nodes = tape.node_count();
  (void)model.forward_values(g);  // establishes capacity
  EXPECT_EQ(tape.node_count(), nodes) << "adapter frame must rewind nodes";
  const std::size_t capacity = tape.capacity_bytes();
  for (int i = 0; i < 3; ++i) {
    const auto values = model.forward_values(g);
    ASSERT_FALSE(values.empty());
  }
  EXPECT_EQ(tape.node_count(), nodes);
  EXPECT_EQ(tape.capacity_bytes(), capacity);
}

}  // namespace
}  // namespace chainnet::tensor
