#include "tensor/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "tensor/nn.h"

namespace chainnet::tensor {
namespace {

using chainnet::support::Rng;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Runs `fn`, asserting it throws a SerializeError carrying `expected`.
template <typename Fn>
void expect_errc(SerializeErrc expected, Fn&& fn) {
  try {
    fn();
    FAIL() << "expected SerializeError "
           << serialize_errc_name(expected);
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.code(), expected) << e.what();
  }
}

TEST(Serialize, RoundTripRestoresValues) {
  const auto path = temp_path("chainnet_params_roundtrip.bin");
  Rng rng(1);
  Mlp a({3, 5, 2}, Activation::kRelu, Activation::kNone, rng, "m");
  save_parameters(a, path);

  Rng rng2(999);  // different init
  Mlp b({3, 5, 2}, Activation::kRelu, Activation::kNone, rng2, "m");
  load_parameters(b, path);

  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->var.size(), pb[i]->var.size());
    for (std::size_t j = 0; j < pa[i]->var.size(); ++j) {
      EXPECT_DOUBLE_EQ(pa[i]->var.value()[j], pb[i]->var.value()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchThrows) {
  const auto path = temp_path("chainnet_params_mismatch.bin");
  Rng rng(1);
  Mlp a({3, 5, 2}, Activation::kRelu, Activation::kNone, rng, "m");
  save_parameters(a, path);
  Mlp b({3, 6, 2}, Activation::kRelu, Activation::kNone, rng, "m");
  EXPECT_THROW(load_parameters(b, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, NameMismatchThrows) {
  const auto path = temp_path("chainnet_params_name.bin");
  Rng rng(1);
  Mlp a({2, 2}, Activation::kRelu, Activation::kNone, rng, "first");
  save_parameters(a, path);
  Mlp b({2, 2}, Activation::kRelu, Activation::kNone, rng, "second");
  EXPECT_THROW(load_parameters(b, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  Rng rng(1);
  Mlp m({2, 2}, Activation::kRelu, Activation::kNone, rng);
  EXPECT_THROW(load_parameters(m, "/nonexistent/params.bin"),
               std::runtime_error);
}

TEST(Serialize, IsParameterFile) {
  const auto path = temp_path("chainnet_params_magic.bin");
  Rng rng(1);
  Mlp m({2, 2}, Activation::kRelu, Activation::kNone, rng);
  save_parameters(m, path);
  EXPECT_TRUE(is_parameter_file(path));
  EXPECT_FALSE(is_parameter_file("/nonexistent/params.bin"));
  std::remove(path.c_str());
}

// --- Typed failure modes (the registry's reject-before-parse contract) ---

TEST(Serialize, TruncatedFileThrowsTyped) {
  const auto path = temp_path("chainnet_params_truncated.bin");
  Rng rng(1);
  Mlp a({3, 5, 2}, Activation::kRelu, Activation::kNone, rng, "m");
  save_parameters(a, path);
  const auto bytes = read_file(path);
  ASSERT_GT(bytes.size(), 16u);
  write_file(path, bytes.substr(0, bytes.size() / 2));

  Mlp b({3, 5, 2}, Activation::kRelu, Activation::kNone, rng, "m");
  expect_errc(SerializeErrc::kTruncated, [&] { load_parameters(b, path); });
  std::remove(path.c_str());
}

TEST(Serialize, BadMagicThrowsTyped) {
  const auto path = temp_path("chainnet_params_badmagic.bin");
  write_file(path, std::string("XXXX") + std::string(64, '\0'));
  Rng rng(1);
  Mlp m({2, 2}, Activation::kRelu, Activation::kNone, rng);
  expect_errc(SerializeErrc::kBadMagic, [&] { load_parameters(m, path); });
  EXPECT_FALSE(is_parameter_file(path));
  std::remove(path.c_str());
}

TEST(Serialize, BadVersionThrowsTyped) {
  const auto path = temp_path("chainnet_params_badversion.bin");
  Rng rng(1);
  Mlp m({2, 2}, Activation::kRelu, Activation::kNone, rng);
  save_parameters(m, path);
  auto bytes = read_file(path);
  ASSERT_GT(bytes.size(), 8u);
  bytes[4] = '\x7f';  // clobber the u32 format version after "CNWT"
  write_file(path, bytes);
  expect_errc(SerializeErrc::kBadVersion, [&] { load_parameters(m, path); });
  std::remove(path.c_str());
}

TEST(Serialize, MismatchCarriesTypedCode) {
  const auto path = temp_path("chainnet_params_typedmismatch.bin");
  Rng rng(1);
  Mlp a({3, 5, 2}, Activation::kRelu, Activation::kNone, rng, "m");
  save_parameters(a, path);
  Mlp b({3, 6, 2}, Activation::kRelu, Activation::kNone, rng, "m");
  expect_errc(SerializeErrc::kMismatch, [&] { load_parameters(b, path); });
  std::remove(path.c_str());
}

// --- Checksums and manifests (the registry's version identity) ---

TEST(Serialize, FileChecksumIsDeterministicAndContentSensitive) {
  const auto path = temp_path("chainnet_checksum.bin");
  write_file(path, "hello weights");
  const auto first = file_checksum(path);
  EXPECT_EQ(file_checksum(path), first);
  write_file(path, "hello weightt");
  EXPECT_NE(file_checksum(path), first);
  std::remove(path.c_str());
  expect_errc(SerializeErrc::kIo, [&] { (void)file_checksum(path); });
}

TEST(Serialize, ChecksumToStringFormat) {
  EXPECT_EQ(checksum_to_string(0), "fnv1a:0000000000000000");
  EXPECT_EQ(checksum_to_string(0xdeadbeefcafef00dull),
            "fnv1a:deadbeefcafef00d");
}

TEST(Serialize, ManifestRoundTripResolvesRelativePaths) {
  const auto dir = std::filesystem::temp_directory_path() / "chainnet_mani";
  std::filesystem::create_directories(dir);
  const auto params = (dir / "weights_v3.bin").string();
  write_file(params, "not real weights");

  WeightsManifest manifest;
  manifest.version = 3;
  manifest.params_path = "weights_v3.bin";  // relative to the manifest
  manifest.checksum = file_checksum(params);
  manifest.hidden = 16;
  manifest.iterations = 2;
  const auto manifest_path = (dir / "v3.json").string();
  save_manifest(manifest, manifest_path);

  const auto loaded = load_manifest(manifest_path);
  EXPECT_EQ(loaded.version, 3u);
  EXPECT_EQ(loaded.params_path, params);  // resolved against the manifest dir
  EXPECT_EQ(loaded.checksum, manifest.checksum);
  EXPECT_EQ(loaded.hidden, 16);
  EXPECT_EQ(loaded.iterations, 2);
  std::filesystem::remove_all(dir);
}

TEST(Serialize, MalformedManifestThrowsTyped) {
  const auto path = temp_path("chainnet_manifest_bad.json");
  write_file(path, "{\"format\":\"something-else\",\"version\":1}");
  expect_errc(SerializeErrc::kBadManifest, [&] { (void)load_manifest(path); });
  write_file(path, "not json at all");
  EXPECT_THROW((void)load_manifest(path), std::runtime_error);
  std::remove(path.c_str());
  expect_errc(SerializeErrc::kIo, [&] { (void)load_manifest(path); });
}

}  // namespace
}  // namespace chainnet::tensor
