#include "tensor/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "tensor/nn.h"

namespace chainnet::tensor {
namespace {

using chainnet::support::Rng;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, RoundTripRestoresValues) {
  const auto path = temp_path("chainnet_params_roundtrip.bin");
  Rng rng(1);
  Mlp a({3, 5, 2}, Activation::kRelu, Activation::kNone, rng, "m");
  save_parameters(a, path);

  Rng rng2(999);  // different init
  Mlp b({3, 5, 2}, Activation::kRelu, Activation::kNone, rng2, "m");
  load_parameters(b, path);

  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->var.size(), pb[i]->var.size());
    for (std::size_t j = 0; j < pa[i]->var.size(); ++j) {
      EXPECT_DOUBLE_EQ(pa[i]->var.value()[j], pb[i]->var.value()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchThrows) {
  const auto path = temp_path("chainnet_params_mismatch.bin");
  Rng rng(1);
  Mlp a({3, 5, 2}, Activation::kRelu, Activation::kNone, rng, "m");
  save_parameters(a, path);
  Mlp b({3, 6, 2}, Activation::kRelu, Activation::kNone, rng, "m");
  EXPECT_THROW(load_parameters(b, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, NameMismatchThrows) {
  const auto path = temp_path("chainnet_params_name.bin");
  Rng rng(1);
  Mlp a({2, 2}, Activation::kRelu, Activation::kNone, rng, "first");
  save_parameters(a, path);
  Mlp b({2, 2}, Activation::kRelu, Activation::kNone, rng, "second");
  EXPECT_THROW(load_parameters(b, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  Rng rng(1);
  Mlp m({2, 2}, Activation::kRelu, Activation::kNone, rng);
  EXPECT_THROW(load_parameters(m, "/nonexistent/params.bin"),
               std::runtime_error);
}

TEST(Serialize, IsParameterFile) {
  const auto path = temp_path("chainnet_params_magic.bin");
  Rng rng(1);
  Mlp m({2, 2}, Activation::kRelu, Activation::kNone, rng);
  save_parameters(m, path);
  EXPECT_TRUE(is_parameter_file(path));
  EXPECT_FALSE(is_parameter_file("/nonexistent/params.bin"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace chainnet::tensor
