// Contract tests for chainnet_lint (tools/lint): every rule R1-R11 has a
// passing and a failing fixture under tests/lint_fixtures/, the failing one
// asserted down to rule id and line; waiver fixtures prove the escape
// hatches (// LINT:manual-lock, // LINT:unguarded, // LINT:allocator,
// // LINT:layer, // LINT:lock-order, // LINT:blocking, // LINT:nondet, and
// the layer spec's `waive` lines) work; the R9 deadlock fixture pins the
// full acquisition witness path; --json round-trips through a golden file;
// and a self-check pins that the linter accepts its own source. The tool is
// driven exactly as check_all.sh drives it: as a subprocess, asserting on
// exit code and stdout.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun run_command(const std::string& command) {
  LintRun result;
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "cannot spawn: " << command;
  if (pipe == nullptr) return result;
  std::array<char, 4096> chunk;
  std::size_t got = 0;
  while ((got = fread(chunk.data(), 1, chunk.size(), pipe)) > 0) {
    result.output.append(chunk.data(), got);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

LintRun run_lint(const std::string& target) {
  return run_command(std::string(CHAINNET_LINT_BINARY) + " " + target +
                     " 2>&1");
}

std::string fixture(const std::string& name) {
  return std::string(CHAINNET_LINT_FIXTURE_DIR) + "/" + name;
}

/// Runs a fixture dir against its own layer spec (R8 fixtures carry one).
LintRun run_lint_with_spec(const std::string& case_dir) {
  return run_lint("--layers " + fixture(case_dir) + "/layers.spec " +
                  fixture(case_dir));
}

int count_findings(const std::string& output) {
  // Finding lines carry a rule id; the trailing summary goes to stderr but
  // is merged here, so count the rule-id marker instead of newlines.
  int count = 0;
  std::size_t at = 0;
  while ((at = output.find(": R", at)) != std::string::npos) {
    ++count;
    at += 3;
  }
  return count;
}

void expect_clean(const std::string& case_dir) {
  const LintRun run = run_lint(fixture(case_dir));
  EXPECT_EQ(run.exit_code, 0) << case_dir << " output:\n" << run.output;
  EXPECT_EQ(count_findings(run.output), 0) << run.output;
}

TEST(LintTest, R1GoodAcceptsRaiiGuards) { expect_clean("r1_good"); }

TEST(LintTest, R1BadFlagsNakedLockCalls) {
  const LintRun run = run_lint(fixture("r1_bad"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(count_findings(run.output), 3) << run.output;
  EXPECT_NE(run.output.find("worker.cpp:7: R1-lock-discipline"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("worker.cpp:9: R1-lock-discipline"),
            std::string::npos)
      << run.output;
  // The guard temporary that unlocks at the semicolon is also R1.
  EXPECT_NE(run.output.find("worker.cpp:12: R1-lock-discipline"),
            std::string::npos)
      << run.output;
}

TEST(LintTest, R1WaiverAcceptsAuditedManualLock) {
  expect_clean("r1_waiver");
}

TEST(LintTest, R2GoodAcceptsGuardedTouches) { expect_clean("r2_good"); }

TEST(LintTest, R2BadFlagsUnguardedMemberTouch) {
  const LintRun run = run_lint(fixture("r2_bad"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(count_findings(run.output), 1) << run.output;
  EXPECT_NE(run.output.find("widget.cpp:9: R2-guarded-member"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("GUARDED_BY(mu_)"), std::string::npos)
      << run.output;
}

TEST(LintTest, R2WaiverAcceptsCallerHoldsPattern) {
  expect_clean("r2_waiver");
}

TEST(LintTest, R3GoodAcceptsTaggedCounterFile) { expect_clean("r3_good"); }

TEST(LintTest, R3BadFlagsRelaxedOutsideCounters) {
  const LintRun run = run_lint(fixture("r3_bad"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(count_findings(run.output), 1) << run.output;
  EXPECT_NE(run.output.find("counters.cpp:5: R3-relaxed-atomic"),
            std::string::npos)
      << run.output;
}

TEST(LintTest, R4GoodAcceptsNamedFrame) { expect_clean("r4_good"); }

TEST(LintTest, R4BadFlagsFrameTemporaryAndHeapTape) {
  const LintRun run = run_lint(fixture("r4_bad"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(count_findings(run.output), 2) << run.output;
  EXPECT_NE(run.output.find("frame.cpp:4: R4-tape-frame"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("frame.cpp:9: R4-tape-frame"), std::string::npos)
      << run.output;
}

TEST(LintTest, R5GoodAcceptsKernelsInsideTensor) { expect_clean("r5_good"); }

TEST(LintTest, R5BadFlagsKernelBypassOutsideTensor) {
  const LintRun run = run_lint(fixture("r5_bad"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(count_findings(run.output), 4) << run.output;
  EXPECT_NE(run.output.find("fast.cpp:3: R5-kernel-routing"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("fast.cpp:6: R5-kernel-routing"),
            std::string::npos)
      << run.output;
  // The f32 tier's private surface is covered by the same rule.
  EXPECT_NE(run.output.find("fast_f32.cpp:3: R5-kernel-routing"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("fast_f32.cpp:6: R5-kernel-routing"),
            std::string::npos)
      << run.output;
}

TEST(LintTest, R6GoodAcceptsSmartPointers) { expect_clean("r6_good"); }

TEST(LintTest, R6BadFlagsNakedNewAndMalloc) {
  const LintRun run = run_lint(fixture("r6_bad"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(count_findings(run.output), 2) << run.output;
  EXPECT_NE(run.output.find("pool.cpp:5: R6-allocation"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("pool.cpp:6: R6-allocation"), std::string::npos)
      << run.output;
}

TEST(LintTest, R6AllocatorTagExemptsArenaInternals) {
  expect_clean("r6_allocator");
}

TEST(LintTest, R7GoodAcceptsCompilerAndReferenceStems) {
  expect_clean("r7_good");
}

TEST(LintTest, R7BadFlagsInterpretedCallsOutsideSanctionedFiles) {
  const LintRun run = run_lint(fixture("r7_bad"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(count_findings(run.output), 2) << run.output;
  EXPECT_NE(run.output.find("hotpath.cpp:5: R7-plan-discipline"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("hotpath.cpp:10: R7-plan-discipline"),
            std::string::npos)
      << run.output;
}

TEST(LintTest, R7WaiverAcceptsParityGateUse) { expect_clean("r7_waiver"); }

TEST(LintTest, R8GoodAcceptsDownwardIncludes) {
  const LintRun run = run_lint_with_spec("r8_good");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintTest, R8BadFlagsUpwardInclude) {
  const LintRun run = run_lint_with_spec("r8_bad");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(count_findings(run.output), 1) << run.output;
  EXPECT_NE(run.output.find("base.h:3: R8-layering"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'lowlayer' -> 'highlayer'"), std::string::npos)
      << run.output;
}

TEST(LintTest, R8WaiverAcceptsSpecAndInSourceWaivers) {
  const LintRun run = run_lint_with_spec("r8_waiver");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintTest, R9GoodAcceptsConsistentOrder) { expect_clean("r9_good"); }

TEST(LintTest, R9DeadlockReportsCycleWithFullWitnessPath) {
  const LintRun run = run_lint(fixture("r9_deadlock"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(count_findings(run.output), 1) << run.output;
  EXPECT_NE(run.output.find("dl.cpp:13: R9-lock-order"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("lock-order cycle 'LedgerPair::audit_mu_' -> "
                            "'LedgerPair::ledger_mu_' -> "
                            "'LedgerPair::audit_mu_'"),
            std::string::npos)
      << run.output;
  // The witness path: every acquisition and the call hop, with file:line.
  for (const char* step :
       {"dl.cpp:13: 'LedgerPair::debit_side' acquires "
        "'LedgerPair::audit_mu_'",
        "dl.cpp:14: 'LedgerPair::debit_side' acquires "
        "'LedgerPair::ledger_mu_' while holding 'LedgerPair::audit_mu_'",
        "dl.cpp:9: 'LedgerPair::credit_side' acquires "
        "'LedgerPair::ledger_mu_'",
        "dl.cpp:10: 'LedgerPair::credit_side' calls "
        "'LedgerPair::bump_audit' while holding 'LedgerPair::ledger_mu_'",
        "dl.cpp:20: 'LedgerPair::bump_audit' acquires "
        "'LedgerPair::audit_mu_'"}) {
    EXPECT_NE(run.output.find(step), std::string::npos)
        << "missing witness step: " << step << "\n"
        << run.output;
  }
}

TEST(LintTest, R9WaiverSuppressesTheAuditedEdge) { expect_clean("r9_waiver"); }

TEST(LintTest, R10GoodAcceptsUnlockSplitAroundBlockingCall) {
  expect_clean("r10_good");
}

TEST(LintTest, R10BadFlagsDirectTransitiveAndCvWaitBlocking) {
  const LintRun run = run_lint(fixture("r10_bad"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(count_findings(run.output), 3) << run.output;
  EXPECT_NE(run.output.find("spooler.cpp:11: R10-blocking-under-lock"),
            std::string::npos)
      << run.output;
  // The transitive finding names the call chain into the blocking op.
  EXPECT_NE(run.output.find("spooler.cpp:12: R10-blocking-under-lock"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'ifstream' (file I/O) in 'Spooler::slurp_spool'"),
            std::string::npos)
      << run.output;
  // Waiting on pump_mu_ while spool_mu_ is also held.
  EXPECT_NE(run.output.find("spooler.cpp:17: R10-blocking-under-lock"),
            std::string::npos)
      << run.output;
}

TEST(LintTest, R10WaiverAcceptsAuditedBlockingSite) {
  expect_clean("r10_waiver");
}

TEST(LintTest, R11GoodAcceptsSeededOrderedCode) { expect_clean("r11_good"); }

TEST(LintTest, R11BadFlagsEveryNondeterminismSource) {
  const LintRun run = run_lint(fixture("r11_bad"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(count_findings(run.output), 4) << run.output;
  EXPECT_NE(run.output.find("sampler.cpp:12: R11-determinism"),
            std::string::npos)
      << run.output;  // rand()
  EXPECT_NE(run.output.find("sampler.cpp:14: R11-determinism"),
            std::string::npos)
      << run.output;  // std::random_device
  EXPECT_NE(run.output.find("sampler.cpp:18: R11-determinism"),
            std::string::npos)
      << run.output;  // steady_clock::now
  EXPECT_NE(run.output.find("sampler.cpp:22: R11-determinism"),
            std::string::npos)
      << run.output;  // range-for over unordered_map
}

TEST(LintTest, R11WaiverAcceptsAuditedClockBudget) {
  expect_clean("r11_waiver");
}

// Lexer-hardening regressions: literal bodies that would trip R1/R6 if the
// lexer leaked their contents as tokens.
TEST(LintTest, LexerRawStringsLeakNoFindings) { expect_clean("lexer_raw"); }
TEST(LintTest, LexerDigitSeparatorsLeakNoFindings) {
  expect_clean("lexer_digits");
}
TEST(LintTest, LexerEncodingPrefixesLeakNoFindings) {
  expect_clean("lexer_prefix");
}

// --json output is pinned byte-for-byte against a checked-in golden file
// (paths are made relative by running from inside the fixture).
TEST(LintTest, JsonOutputMatchesGoldenFile) {
  const LintRun run = run_command("cd " + fixture("r11_bad") + " && " +
                                  std::string(CHAINNET_LINT_BINARY) +
                                  " --json src 2>/dev/null");
  EXPECT_EQ(run.exit_code, 1);
  std::ifstream golden(fixture("golden/r11_bad.json"));
  ASSERT_TRUE(golden.is_open());
  std::ostringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(run.output, want.str());
}

// The linter must hold itself to the contracts it enforces.
TEST(LintTest, SelfCheckLinterSourceIsClean) {
  const LintRun run = run_lint(std::string(CHAINNET_LINT_SELF_DIR));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// The whole corpus at once: bad fixtures still fail, with deterministic
// (sorted, deduplicated) output, and good fixtures contribute nothing.
// Byte-identical repeat runs are the determinism contract the tool demands
// of the code it lints — so it must meet it itself.
TEST(LintTest, WholeCorpusIsDeterministic) {
  const LintRun a = run_lint(fixture(""));
  const LintRun b = run_lint(fixture(""));
  EXPECT_EQ(a.exit_code, 1);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(count_findings(a.output), 23) << a.output;
}

// The same byte-identical contract for the JSON mode over a mixed tree.
TEST(LintTest, JsonOutputIsDeterministic) {
  const std::string command = std::string(CHAINNET_LINT_BINARY) +
                              " --json " + fixture("") + " 2>/dev/null";
  const LintRun a = run_command(command);
  const LintRun b = run_command(command);
  EXPECT_EQ(a.exit_code, 1);
  EXPECT_EQ(a.output, b.output);
  EXPECT_FALSE(a.output.empty());
}

TEST(LintTest, MissingPathIsUsageError) {
  const LintRun run = run_lint(fixture("does_not_exist"));
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

}  // namespace
