// End-to-end gradient check of the full ChainNet model: every parameter's
// analytic gradient (through encoders, three GRUs, the attention
// aggregation and both MLP heads, across multiple message-passing
// iterations) must match central finite differences of the eq.-(13) loss.
// A tiny hidden size keeps the sweep fast while covering every code path,
// including the shared-device attention (device 1 hosts two steps).
#include <gtest/gtest.h>

#include "core/chainnet.h"
#include "edge/graph.h"
#include "test_util.h"

namespace chainnet::core {
namespace {

using chainnet::testing::expect_gradient_matches;
using chainnet::testing::small_placement;
using chainnet::testing::small_system;
using support::Rng;

double loss_value(ChainNet& model, const edge::PlacementGraph& g) {
  const auto out = model.forward(g);
  // Fixed pseudo-targets in (0,1).
  std::vector<tensor::Var> terms;
  double target = 0.3;
  for (const auto& o : out) {
    tensor::Var dt = tensor::add_scalar(o.throughput, -target);
    terms.push_back(tensor::mul(dt, dt));
    tensor::Var dl = tensor::add_scalar(o.latency, -(target + 0.2));
    terms.push_back(tensor::mul(dl, dl));
    target += 0.1;
  }
  return tensor::sum_of(terms).item();
}

void run_gradcheck(const ChainNetConfig& base) {
  Rng rng(17);
  ChainNetConfig cfg = base;
  cfg.hidden = 4;
  cfg.iterations = 2;
  ChainNet model(cfg, rng);
  const auto g = edge::build_graph(small_system(), small_placement(),
                                   model.feature_mode());
  // Analytic gradients.
  {
    const auto out = model.forward(g);
    std::vector<tensor::Var> terms;
    double target = 0.3;
    for (const auto& o : out) {
      tensor::Var dt = tensor::add_scalar(o.throughput, -target);
      terms.push_back(tensor::mul(dt, dt));
      tensor::Var dl = tensor::add_scalar(o.latency, -(target + 0.2));
      terms.push_back(tensor::mul(dl, dl));
      target += 0.1;
    }
    tensor::sum_of(terms).backward();
  }
  auto rebuild = [&] { return loss_value(model, g); };
  for (auto* p : model.parameters()) {
    SCOPED_TRACE(p->name);
    expect_gradient_matches(p->var, rebuild, 1e-6, 2e-4);
  }
}

TEST(ChainNetGradCheck, FullModelWithAttention) {
  run_gradcheck(ChainNetConfig{});
}

TEST(ChainNetGradCheck, MeanAggregationVariant) {
  ChainNetConfig cfg;
  cfg.attention_aggregation = false;
  run_gradcheck(cfg);
}

TEST(ChainNetGradCheck, RawOutputVariant) {
  run_gradcheck(ChainNetConfig::ablation_beta());
}

}  // namespace
}  // namespace chainnet::core
